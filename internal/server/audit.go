package server

import (
	"fmt"
	"net/http"
	"strconv"

	"provpriv/internal/auditlog"
	"provpriv/internal/obs"
)

// auditWriter wraps the ResponseWriter for the duration of one audited
// mutation, capturing the final status plus the identity/target fields
// that withRole and the handler stash as the request progresses. It
// sits *above* the obs.Recorder (audited runs inside the mux, the
// middleware outside), and exposes Unwrap so the obs helpers and
// http.ResponseController keep reaching the layers below.
type auditWriter struct {
	http.ResponseWriter
	status    int
	principal string
	token     string
	role      string
	target    string
}

func (a *auditWriter) WriteHeader(code int) {
	if a.status == 0 {
		a.status = code
	}
	a.ResponseWriter.WriteHeader(code)
}

func (a *auditWriter) Write(p []byte) (int, error) {
	if a.status == 0 {
		a.status = http.StatusOK
	}
	return a.ResponseWriter.Write(p)
}

// Unwrap keeps the writer chain walkable (obs.recorderOf,
// http.ResponseController).
func (a *auditWriter) Unwrap() http.ResponseWriter { return a.ResponseWriter }

// auditWriterOf finds the audited() wrapper under w, if this request is
// an audited mutation. Handlers and withRole call the setters below
// unconditionally; on non-audited requests they are no-ops.
func auditWriterOf(w http.ResponseWriter) *auditWriter {
	for w != nil {
		if aw, ok := w.(*auditWriter); ok {
			return aw
		}
		u, ok := w.(interface{ Unwrap() http.ResponseWriter })
		if !ok {
			return nil
		}
		w = u.Unwrap()
	}
	return nil
}

// setAuditIdentity records who the request authenticated as, once
// withRole knows. Denied requests that never reach a handler still get
// identity when authentication itself succeeded.
func (s *Server) setAuditIdentity(w http.ResponseWriter, c creds) {
	if s.Audit == nil {
		return
	}
	if aw := auditWriterOf(w); aw != nil {
		aw.principal, aw.token, aw.role = c.user, c.token, c.role.String()
	}
}

// setAuditTarget records the entity the mutation acted on (spec id,
// execution id, token name), once the handler has resolved it.
func setAuditTarget(w http.ResponseWriter, target string) {
	if aw := auditWriterOf(w); aw != nil {
		aw.target = target
	}
}

// audited wraps a mutation route so that every request through it —
// succeeded, rejected, or denied — appends exactly one record to the
// audit log before the response is complete. The append is durable
// (storage commit) but failure to audit does not fail the mutation:
// the mutation already happened when the record is cut, so the honest
// behavior is to log the audit error loudly (audit_errors_total) and
// serve the response, not to 500 a committed change. With no audit log
// configured the wrapper is a direct call.
func (s *Server) audited(action string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.Audit == nil {
			h(w, r)
			return
		}
		aw := &auditWriter{ResponseWriter: w}
		h(aw, r)
		status := aw.status
		if status == 0 {
			status = http.StatusOK
		}
		err := s.Audit.Append(auditlog.Record{
			RequestID: obs.RequestID(w),
			Principal: aw.principal,
			Token:     aw.token,
			Role:      aw.role,
			Action:    action,
			Target:    aw.target,
			Status:    status,
		})
		if err != nil {
			s.auditErrors.Add(1)
			s.log().Error("audit append failed", "action", action, "error", err)
		}
	}
}

// handleAudit serves the recent audit window, newest first, with
// optional principal/action filters — GET /api/v1/audit
// [?principal=P][&action=A][&limit=N], admin only.
func (s *Server) handleAudit(w http.ResponseWriter, r *http.Request, user string) {
	if s.Audit == nil {
		s.writeJSON(w, http.StatusOK, map[string]any{
			"enabled": false, "records": []auditlog.Record{}, "total": 0,
		})
		return
	}
	q := auditlog.Query{
		Principal: r.URL.Query().Get("principal"),
		Action:    r.URL.Query().Get("action"),
	}
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			s.fail(w, r, fmt.Errorf("server: bad limit %q", v))
			return
		}
		q.Limit = n
	}
	recs, total := s.Audit.Recent(q)
	s.writeJSON(w, http.StatusOK, map[string]any{
		"enabled": true, "records": recs, "total": total,
	})
}
