package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"provpriv/internal/auth"
	"provpriv/internal/exec"
	"provpriv/internal/repo"
	"provpriv/internal/workflow"
	"provpriv/internal/workload"
)

// Token secrets of the authenticated test server. The token file binds
// them to the fixture's registered users (bob=public reader,
// carol=analyst writer, alice=owner admin).
const (
	readerSecret = "s-reader"
	writerSecret = "s-writer"
	adminSecret  = "s-admin"
)

// newAuthedServer is newTestServer with bearer-token authentication
// configured: header auth is rejected (the secure default), three
// tokens ladder the roles.
func newAuthedServer(t *testing.T) (*httptest.Server, *Server, *repo.Repository, *exec.Execution) {
	t.Helper()
	_, r, e := newTestServer(t)
	a, err := auth.New([]*auth.Token{
		auth.NewToken("t-reader", "bob", auth.RoleReader, readerSecret),
		auth.NewToken("t-writer", "carol", auth.RoleWriter, writerSecret),
		auth.NewToken("t-admin", "alice", auth.RoleAdmin, adminSecret),
	})
	if err != nil {
		t.Fatalf("auth.New: %v", err)
	}
	srv := New(r)
	srv.Auth = auth.NewStore(a)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, srv, r, e
}

// do performs a request with an optional bearer secret and decodes the
// JSON response.
func do(t *testing.T, ts *httptest.Server, method, path, secret string, body []byte, out any) int {
	t.Helper()
	req, err := http.NewRequest(method, ts.URL+path, bytes.NewReader(body))
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	if secret != "" {
		req.Header.Set("Authorization", "Bearer "+secret)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("%s %s: bad JSON %q: %v", method, path, data, err)
		}
	}
	return resp.StatusCode
}

// zebrafishSpec builds a small spec with a vocabulary no fixture spec
// shares, so index-freshness assertions are unambiguous.
func zebrafishSpec(t testing.TB, id string) *workflow.Spec {
	t.Helper()
	s, err := workflow.NewBuilder(id, "Zebrafish Pipeline", "R").
		Workflow("R", "Root").
		Source("I", "x").
		Atomic("A1", "Zebrafish Genome Study", []string{"x"}, []string{"y"}).
		Sink("O", "y").
		Edge("I", "A1", "x").
		Edge("A1", "O", "y").
		Build()
	if err != nil {
		t.Fatalf("build spec: %v", err)
	}
	return s
}

// TestMutationEndToEnd drives the write path over the wire: a writer
// adds a spec and an execution, a reader immediately searches and
// retrieves provenance (index freshness — no refresh step), the writer
// deletes the spec and the hits disappear.
func TestMutationEndToEnd(t *testing.T) {
	ts, _, _, _ := newAuthedServer(t)
	spec := zebrafishSpec(t, "zfish")
	specJSON, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(map[string]json.RawMessage{"spec": specJSON})
	var created struct {
		Spec string `json:"spec"`
	}
	if code := do(t, ts, "POST", "/api/v1/specs", writerSecret, body, &created); code != http.StatusCreated {
		t.Fatalf("add spec: %d", code)
	}
	if created.Spec != "zfish" {
		t.Fatalf("created = %+v", created)
	}

	e, err := exec.NewRunner(spec, nil).Run("EZ1", map[string]exec.Value{"x": "tank-7"})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	execJSON, _ := json.Marshal(e)
	if code := do(t, ts, "POST", "/api/v1/executions", writerSecret, execJSON, nil); code != http.StatusCreated {
		t.Fatalf("add execution: %d", code)
	}

	// Index freshness: the reader token finds the new spec immediately.
	var sr searchResp
	if code := do(t, ts, "GET", "/api/v1/search?q=zebrafish", readerSecret, nil, &sr); code != http.StatusOK {
		t.Fatalf("search: %d", code)
	}
	if len(sr.Hits) != 1 || sr.Hits[0].SpecID != "zfish" {
		t.Fatalf("fresh spec not searchable: %+v", sr.Hits)
	}
	// And the new execution answers provenance.
	var itemID string
	for id := range e.Items {
		itemID = id
	}
	var prov struct {
		Provenance *exec.Execution `json:"provenance"`
	}
	path := fmt.Sprintf("/api/v1/provenance?spec=zfish&exec=EZ1&item=%s", itemID)
	if code := do(t, ts, "GET", path, readerSecret, nil, &prov); code != http.StatusOK {
		t.Fatalf("provenance: %d", code)
	}
	if prov.Provenance == nil || len(prov.Provenance.Nodes) == 0 {
		t.Fatal("empty provenance for fresh execution")
	}

	// Delete: hits disappear, a second delete is 404.
	if code := do(t, ts, "DELETE", "/api/v1/specs/zfish", writerSecret, nil, nil); code != http.StatusOK {
		t.Fatalf("delete: %d", code)
	}
	if code := do(t, ts, "GET", "/api/v1/search?q=zebrafish", readerSecret, nil, &sr); code != http.StatusOK {
		t.Fatalf("search after delete: %d", code)
	}
	if len(sr.Hits) != 0 {
		t.Fatalf("deleted spec still searchable: %+v", sr.Hits)
	}
	if code := do(t, ts, "DELETE", "/api/v1/specs/zfish", writerSecret, nil, nil); code != http.StatusNotFound {
		t.Fatalf("double delete: %d, want 404", code)
	}
}

// TestMutationAuthz sweeps the denial matrix: missing/invalid
// credentials are 401, insufficient roles are 403, and the trusted
// header scheme is rejected outright when a token file is configured
// (read-only when the operator bridges it).
func TestMutationAuthz(t *testing.T) {
	ts, srv, _, _ := newAuthedServer(t)
	specBody := []byte(`{"spec":{}}`)

	// 401: no credentials, wrong secret, non-bearer scheme.
	if code := do(t, ts, "POST", "/api/v1/specs", "", specBody, nil); code != http.StatusUnauthorized {
		t.Fatalf("no creds: %d", code)
	}
	if code := do(t, ts, "POST", "/api/v1/specs", "nope", specBody, nil); code != http.StatusUnauthorized {
		t.Fatalf("bad secret: %d", code)
	}
	req, _ := http.NewRequest("GET", ts.URL+"/api/v1/stats", nil)
	req.Header.Set("Authorization", "Basic Zm9vOmJhcg==")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("basic auth: %d", resp.StatusCode)
	}

	// Header auth is rejected by default when tokens are configured —
	// even for reads, even naming a registered user.
	hreq, _ := http.NewRequest("GET", ts.URL+"/api/v1/stats", nil)
	hreq.Header.Set("X-Prov-User", "alice")
	hresp, err := ts.Client().Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("header auth with token file: %d, want 401", hresp.StatusCode)
	}

	// 403: role ladder enforced — reader can't write, writer can't save.
	if code := do(t, ts, "POST", "/api/v1/specs", readerSecret, specBody, nil); code != http.StatusForbidden {
		t.Fatalf("reader mutation: %d, want 403", code)
	}
	if code := do(t, ts, "DELETE", "/api/v1/specs/disease-susceptibility", readerSecret, nil, nil); code != http.StatusForbidden {
		t.Fatalf("reader delete: %d, want 403", code)
	}
	if code := do(t, ts, "POST", "/api/v1/save", writerSecret, nil, nil); code != http.StatusForbidden {
		t.Fatalf("writer save: %d, want 403", code)
	}
	// Reads still work for every role.
	for _, secret := range []string{readerSecret, writerSecret, adminSecret} {
		if code := do(t, ts, "GET", "/api/v1/specs", secret, nil, nil); code != http.StatusOK {
			t.Fatalf("read with %s: %d", secret, code)
		}
	}

	// The migration bridge: header principals come back read-only.
	srv.AllowHeaderAuth = true
	hreq2, _ := http.NewRequest("GET", ts.URL+"/api/v1/stats", nil)
	hreq2.Header.Set("X-Prov-User", "alice")
	hresp2, err := ts.Client().Do(hreq2)
	if err != nil {
		t.Fatal(err)
	}
	hresp2.Body.Close()
	if hresp2.StatusCode != http.StatusOK {
		t.Fatalf("bridged header read: %d", hresp2.StatusCode)
	}
	hreq3, _ := http.NewRequest("POST", ts.URL+"/api/v1/specs", bytes.NewReader(specBody))
	hreq3.Header.Set("X-Prov-User", "alice")
	hresp3, err := ts.Client().Do(hreq3)
	if err != nil {
		t.Fatal(err)
	}
	hresp3.Body.Close()
	if hresp3.StatusCode != http.StatusForbidden {
		t.Fatalf("bridged header mutation: %d, want 403", hresp3.StatusCode)
	}
}

// TestQueryParamPrincipalCannotMutate: the bare ?user= parameter is a
// curl convenience for reads; a cross-site "simple request" can forge
// it without a preflight, so mutations must demand header-borne
// credentials — in dev mode (no token file) the X-Prov-User header
// works, the URL parameter never does.
func TestQueryParamPrincipalCannotMutate(t *testing.T) {
	ts, _, _ := newTestServer(t) // legacy dev-mode server, Auth == nil
	spec := zebrafishSpec(t, "zq")
	specJSON, _ := json.Marshal(spec)
	body, _ := json.Marshal(map[string]json.RawMessage{"spec": specJSON})

	// ?user= principal: read OK, mutation 401.
	resp, err := ts.Client().Post(ts.URL+"/api/v1/specs?user=alice", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("query-param mutation: %d, want 401", resp.StatusCode)
	}
	if code := get(t, ts, "", "/api/v1/stats?user=alice", nil); code != http.StatusOK {
		t.Fatalf("query-param read: %d", code)
	}
	// Header principal: dev mode grants the full surface.
	req, _ := http.NewRequest("POST", ts.URL+"/api/v1/specs", bytes.NewReader(body))
	req.Header.Set("X-Prov-User", "alice")
	hresp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusCreated {
		t.Fatalf("dev-mode header mutation: %d, want 201", hresp.StatusCode)
	}
}

// TestBearerSchemeCaseInsensitive: RFC 7235 auth-scheme names are
// case-insensitive — "bearer"/"BEARER" must authenticate like "Bearer".
func TestBearerSchemeCaseInsensitive(t *testing.T) {
	ts, _, _, _ := newAuthedServer(t)
	for _, scheme := range []string{"Bearer", "bearer", "BEARER"} {
		req, _ := http.NewRequest("GET", ts.URL+"/api/v1/stats", nil)
		req.Header.Set("Authorization", scheme+" "+readerSecret)
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("scheme %q: %d, want 200", scheme, resp.StatusCode)
		}
	}
}

// TestUnknownBodyFieldRejected: a typo'd key in a mutation body must be
// a 400, never a silent semantic change — {"plicy": ...} on PUT /policy
// would otherwise decode as a nil policy and reset the spec to
// all-public with a 200.
func TestUnknownBodyFieldRejected(t *testing.T) {
	ts, _, r, _ := newAuthedServer(t)
	body := `{"spec":"disease-susceptibility","plicy":{"data_levels":{"snps":3}}}`
	if code := do(t, ts, "PUT", "/api/v1/policy", writerSecret, []byte(body), nil); code != http.StatusBadRequest {
		t.Fatalf("typo'd policy key: %d, want 400", code)
	}
	// The policy is untouched: snps is still owner-protected.
	if pol := r.Policy("disease-susceptibility"); pol.DataLevels["snps"] == 0 {
		t.Fatal("typo'd body silently reset the policy")
	}
	gen := `{"spec":"disease-susceptibility","heirarchies":{}}`
	if code := do(t, ts, "PUT", "/api/v1/generalization", writerSecret, []byte(gen), nil); code != http.StatusBadRequest {
		t.Fatalf("typo'd hierarchies key: %d, want 400", code)
	}
}

// TestMutationConflictsAndValidation covers 409 on duplicates and 400
// on malformed bodies.
func TestMutationConflictsAndValidation(t *testing.T) {
	ts, _, r, _ := newAuthedServer(t)
	spec := zebrafishSpec(t, "zf2")
	specJSON, _ := json.Marshal(spec)
	body, _ := json.Marshal(map[string]json.RawMessage{"spec": specJSON})
	if code := do(t, ts, "POST", "/api/v1/specs", writerSecret, body, nil); code != http.StatusCreated {
		t.Fatalf("add spec: %d", code)
	}
	// Duplicate spec → 409.
	if code := do(t, ts, "POST", "/api/v1/specs", writerSecret, body, nil); code != http.StatusConflict {
		t.Fatalf("duplicate spec: %d, want 409", code)
	}
	// Duplicate execution → 409; unknown spec → 404.
	e, err := exec.NewRunner(spec, nil).Run("E1", map[string]exec.Value{"x": "v"})
	if err != nil {
		t.Fatal(err)
	}
	execJSON, _ := json.Marshal(e)
	if code := do(t, ts, "POST", "/api/v1/executions", writerSecret, execJSON, nil); code != http.StatusCreated {
		t.Fatalf("add exec: %d", code)
	}
	if code := do(t, ts, "POST", "/api/v1/executions", writerSecret, execJSON, nil); code != http.StatusConflict {
		t.Fatalf("duplicate exec: %d, want 409", code)
	}
	e2 := *e
	e2.SpecID = "no-such-spec"
	orphan, _ := json.Marshal(&e2)
	if code := do(t, ts, "POST", "/api/v1/executions", writerSecret, orphan, nil); code != http.StatusNotFound {
		t.Fatalf("orphan exec: %d, want 404", code)
	}

	// Malformed bodies → 400.
	for name, req := range map[string]struct {
		method, path string
		body         string
	}{
		"not json":          {"POST", "/api/v1/specs", "{"},
		"empty spec":        {"POST", "/api/v1/specs", "{}"},
		"trailing garbage":  {"POST", "/api/v1/specs", `{"spec":{}} extra`},
		"exec not json":     {"POST", "/api/v1/executions", "nope"},
		"policy no spec":    {"PUT", "/api/v1/policy", `{"policy":{}}`},
		"policy wrong spec": {"PUT", "/api/v1/policy", `{"spec":"zf2","policy":{"spec":"other"}}`},
		"gen no spec":       {"PUT", "/api/v1/generalization", `{"hierarchies":{}}`},
		"gen attr clash":    {"PUT", "/api/v1/generalization", `{"spec":"zf2","hierarchies":{"a":{"attr":"b"}}}`},
		"gen nil ladder":    {"PUT", "/api/v1/generalization", `{"spec":"zf2","hierarchies":{"a":null}}`},
	} {
		if code := do(t, ts, req.method, req.path, writerSecret, []byte(req.body), nil); code != http.StatusBadRequest {
			t.Fatalf("%s: %d, want 400", name, code)
		}
	}
	// Policy update for an unknown spec → 404.
	if code := do(t, ts, "PUT", "/api/v1/policy", writerSecret, []byte(`{"spec":"missing"}`), nil); code != http.StatusNotFound {
		t.Fatalf("policy unknown spec: %d, want 404", code)
	}
	// The repository still validates content (not just transport JSON):
	// a structurally invalid spec is a 400, not a 500 or a partial add.
	bad, _ := json.Marshal(map[string]json.RawMessage{"spec": []byte(`{"id":"broken"}`)})
	if code := do(t, ts, "POST", "/api/v1/specs", writerSecret, bad, nil); code != http.StatusBadRequest {
		t.Fatalf("invalid spec: %d, want 400", code)
	}
	if r.Spec("broken") != nil {
		t.Fatal("invalid spec partially registered")
	}
}

// TestPolicyAndGeneralizationOverWire: PUT /policy and PUT
// /generalization reach the engine — a ladder installed over the wire
// turns the public user's redacted snps into a generalized value, and a
// policy update reclassifies visibility.
func TestPolicyAndGeneralizationOverWire(t *testing.T) {
	ts, _, _, e := newAuthedServer(t)
	var progID, snpID string
	for id, it := range e.Items {
		switch it.Attr {
		case "prognosis":
			progID = id
		case "snps":
			snpID = id
		}
	}
	path := fmt.Sprintf("/api/v1/provenance?spec=disease-susceptibility&exec=%s&item=%s", e.ID, progID)
	var prov struct {
		Provenance *exec.Execution `json:"provenance"`
	}
	// Baseline: public reader sees snps redacted.
	if code := do(t, ts, "GET", path, readerSecret, nil, &prov); code != http.StatusOK {
		t.Fatalf("provenance: %d", code)
	}
	if it := prov.Provenance.Items[snpID]; it == nil || !it.Redacted {
		t.Fatalf("baseline snps = %+v, want redacted", it)
	}
	// Install a ladder over the wire.
	gen := `{"spec":"disease-susceptibility","hierarchies":{"snps":{"attr":"snps","levels":[{"rs1":"chr1"},{"chr1":"genome"}]}}}`
	if code := do(t, ts, "PUT", "/api/v1/generalization", writerSecret, []byte(gen), nil); code != http.StatusOK {
		t.Fatalf("set generalization: %d", code)
	}
	if code := do(t, ts, "GET", path, readerSecret, nil, &prov); code != http.StatusOK {
		t.Fatalf("provenance after ladder: %d", code)
	}
	if it := prov.Provenance.Items[snpID]; it == nil || it.Redacted || it.Value != "genome" {
		t.Fatalf("generalized snps = %+v, want genome", it)
	}
	// Replace the policy over the wire: opening snps to the public makes
	// the raw value visible again.
	pol := `{"spec":"disease-susceptibility","policy":{"spec":"disease-susceptibility"}}`
	if code := do(t, ts, "PUT", "/api/v1/policy", writerSecret, []byte(pol), nil); code != http.StatusOK {
		t.Fatalf("update policy: %d", code)
	}
	if code := do(t, ts, "GET", path, readerSecret, nil, &prov); code != http.StatusOK {
		t.Fatalf("provenance after policy: %d", code)
	}
	if it := prov.Provenance.Items[snpID]; it == nil || it.Redacted || it.Value != "rs1" {
		t.Fatalf("open-policy snps = %+v, want raw rs1", it)
	}
}

// TestSaveEndpoint: admin-only persistence to the operator-configured
// directory.
func TestSaveEndpoint(t *testing.T) {
	ts, srv, _, _ := newAuthedServer(t)
	// Unconfigured → 400 even for the admin.
	if code := do(t, ts, "POST", "/api/v1/save", adminSecret, nil, nil); code != http.StatusBadRequest {
		t.Fatalf("save without dir: %d, want 400", code)
	}
	dir := t.TempDir()
	srv.SaveDir = dir
	var saved struct {
		Dir string `json:"dir"`
	}
	if code := do(t, ts, "POST", "/api/v1/save", adminSecret, nil, &saved); code != http.StatusOK {
		t.Fatalf("save: %d", code)
	}
	if saved.Dir != dir {
		t.Fatalf("saved dir = %q", saved.Dir)
	}
	if _, err := os.Stat(filepath.Join(dir, "manifest.json")); err != nil {
		t.Fatalf("manifest not written: %v", err)
	}
	// The saved directory round-trips.
	r2, err := repo.Load(dir)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(r2.SpecIDs()) != 1 {
		t.Fatalf("reloaded specs = %v", r2.SpecIDs())
	}
}

// TestMutationMetrics: mutations_total and auth_failures_total move in
// /metrics, per-token counters appear in /stats.
func TestMutationMetrics(t *testing.T) {
	ts, _, _, _ := newAuthedServer(t)
	if v := scrapeMetric(t, ts, "provpriv_mutations_total"); v != 0 {
		t.Fatalf("initial mutations_total = %d", v)
	}
	spec := zebrafishSpec(t, "zm")
	specJSON, _ := json.Marshal(spec)
	body, _ := json.Marshal(map[string]json.RawMessage{"spec": specJSON})
	if code := do(t, ts, "POST", "/api/v1/specs", writerSecret, body, nil); code != http.StatusCreated {
		t.Fatalf("add spec: %d", code)
	}
	do(t, ts, "POST", "/api/v1/specs", "bogus", body, nil)      // 401
	do(t, ts, "POST", "/api/v1/specs", readerSecret, body, nil) // 403
	if v := scrapeMetric(t, ts, "provpriv_mutations_total"); v != 1 {
		t.Fatalf("mutations_total = %d, want 1", v)
	}
	if v := scrapeMetric(t, ts, "provpriv_auth_failures_total"); v < 2 {
		t.Fatalf("auth_failures_total = %d, want >= 2", v)
	}
	// Per-token series in /metrics (labeled) and /stats (JSON).
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(raw), `provpriv_auth_token_uses_total{token="t-writer",role="writer"}`) {
		t.Fatalf("per-token metric missing:\n%s", raw)
	}
	var st struct {
		Mutations    int64            `json:"mutations_total"`
		AuthFailures int64            `json:"auth_failures_total"`
		Tokens       []auth.TokenStat `json:"tokens"`
	}
	if code := do(t, ts, "GET", "/api/v1/stats", adminSecret, nil, &st); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if st.Mutations != 1 || st.AuthFailures < 2 || len(st.Tokens) != 3 {
		t.Fatalf("stats = %+v", st)
	}
	var writerUses int64
	for _, tok := range st.Tokens {
		if tok.Name == "t-writer" {
			writerUses = tok.Uses
		}
	}
	if writerUses != 1 {
		t.Fatalf("writer uses = %d, want 1 (one authenticated add-spec)", writerUses)
	}
}

// TestMutateWhileRead is the -race pass of the mutation surface: writer
// goroutines POST fresh specs and executions over the wire while reader
// goroutines search, query and scrape stats. Mirrors the PR 2 churn
// harness, now through the authenticated HTTP stack.
func TestMutateWhileRead(t *testing.T) {
	ts, _, _, _ := newAuthedServer(t)
	var wg sync.WaitGroup
	// Writers: each adds distinct specs + executions via the API.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				id := fmt.Sprintf("churn-%d-%d", g, i)
				s, err := workload.RandomSpec(workload.SpecConfig{
					Seed: int64(g*100 + i), ID: id, Depth: 2, Fanout: 2, Chain: 3, SkipProb: 0.2,
				})
				if err != nil {
					t.Errorf("RandomSpec: %v", err)
					return
				}
				specJSON, _ := json.Marshal(s)
				body, _ := json.Marshal(map[string]json.RawMessage{"spec": specJSON})
				if code := do(t, ts, "POST", "/api/v1/specs", writerSecret, body, nil); code != http.StatusCreated {
					t.Errorf("add spec %s: %d", id, code)
					return
				}
				e, err := exec.NewRunner(s, nil).Run(id+"-E0", workload.RandomInputs(s, int64(i)))
				if err != nil {
					t.Errorf("Run: %v", err)
					return
				}
				execJSON, _ := json.Marshal(e)
				if code := do(t, ts, "POST", "/api/v1/executions", writerSecret, execJSON, nil); code != http.StatusCreated {
					t.Errorf("add exec %s: %d", id, code)
					return
				}
			}
		}(g)
	}
	// Readers: continuous search/query/stats traffic during the churn.
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			secrets := []string{readerSecret, writerSecret, adminSecret}
			for i := 0; i < 30; i++ {
				secret := secrets[(c+i)%len(secrets)]
				if code := do(t, ts, "GET", "/api/v1/search?q=query&limit=3", secret, nil, nil); code != http.StatusOK {
					t.Errorf("reader %d: search %d", c, code)
					return
				}
				if code := do(t, ts, "GET", "/api/v1/stats", secret, nil, nil); code != http.StatusOK {
					t.Errorf("reader %d: stats %d", c, code)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	// Every churned spec is present and searchable afterwards.
	var specs struct {
		Specs []specInfo `json:"specs"`
	}
	if code := do(t, ts, "GET", "/api/v1/specs", readerSecret, nil, &specs); code != http.StatusOK {
		t.Fatalf("specs: %d", code)
	}
	if len(specs.Specs) != 1+2*6 {
		t.Fatalf("specs after churn = %d, want 13", len(specs.Specs))
	}
}
