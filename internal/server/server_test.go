package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"provpriv/internal/exec"
	"provpriv/internal/privacy"
	"provpriv/internal/repo"
	"provpriv/internal/storage"
	"provpriv/internal/workflow"
	"provpriv/internal/workload"
)

// newTestServer builds the paper's disease-susceptibility repository
// (snps owner-only, module M6 owner-only, per-level view grants) behind
// a live httptest server: the same fixture as the engine tests, now
// exercised end-to-end over HTTP.
func newTestServer(t *testing.T) (*httptest.Server, *repo.Repository, *exec.Execution) {
	t.Helper()
	r := repo.New()
	s := workflow.DiseaseSusceptibility()
	pol := privacy.NewPolicy(s.ID)
	pol.DataLevels["snps"] = privacy.Owner
	pol.ModuleLevels["M6"] = privacy.Owner
	pol.ViewGrants[privacy.Registered] = []string{"W2"}
	pol.ViewGrants[privacy.Analyst] = []string{"W3", "W4"}
	if err := r.AddSpec(s, pol); err != nil {
		t.Fatalf("AddSpec: %v", err)
	}
	e, err := exec.NewRunner(s, nil).Run("E1", map[string]exec.Value{
		"snps": "rs1", "ethnicity": "eth1", "lifestyle": "active",
		"family_history": "fh1", "symptoms": "none",
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := r.AddExecution(e); err != nil {
		t.Fatalf("AddExecution: %v", err)
	}
	r.AddUser(privacy.User{Name: "alice", Level: privacy.Owner, Group: "owners"})
	r.AddUser(privacy.User{Name: "bob", Level: privacy.Public, Group: "public"})
	r.AddUser(privacy.User{Name: "carol", Level: privacy.Analyst, Group: "analysts"})
	ts := httptest.NewServer(New(r))
	t.Cleanup(ts.Close)
	return ts, r, e
}

// get performs a GET as the given user and decodes the JSON body.
func get(t *testing.T, ts *httptest.Server, user, path string, out any) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	if user != "" {
		req.Header.Set("X-Prov-User", user)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("GET %s: Content-Type = %q", path, ct)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("GET %s: bad JSON %q: %v", path, body, err)
		}
	}
	return resp.StatusCode
}

// tryGet is the goroutine-safe variant of get: it reports failures as
// values instead of calling into testing.T.
func tryGet(ts *httptest.Server, user, path string, out any) (int, error) {
	req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
	if err != nil {
		return 0, err
	}
	if user != "" {
		req.Header.Set("X-Prov-User", user)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, err
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			return resp.StatusCode, fmt.Errorf("bad JSON %q: %w", body, err)
		}
	}
	return resp.StatusCode, nil
}

type searchResp struct {
	Query string      `json:"query"`
	Hits  []searchHit `json:"hits"`
}

func TestSearchHitAndMiss(t *testing.T) {
	ts, _, _ := newTestServer(t)
	// Hit: the owner finds the OMIM module.
	var hit searchResp
	if code := get(t, ts, "alice", "/api/v1/search?q=omim", &hit); code != http.StatusOK {
		t.Fatalf("search hit status = %d", code)
	}
	if len(hit.Hits) != 1 || hit.Hits[0].SpecID != "disease-susceptibility" {
		t.Fatalf("hits = %+v", hit.Hits)
	}
	if hit.Hits[0].Score <= 0 || len(hit.Hits[0].Matches) == 0 {
		t.Fatalf("degenerate hit: %+v", hit.Hits[0])
	}
	// Miss: a vocabulary word matching nothing yields an empty list,
	// not an error.
	var miss searchResp
	if code := get(t, ts, "alice", "/api/v1/search?q=zebrafish", &miss); code != http.StatusOK {
		t.Fatalf("search miss status = %d", code)
	}
	if len(miss.Hits) != 0 {
		t.Fatalf("miss hits = %+v", miss.Hits)
	}
	// Module privacy through the wire: the same query as public finds
	// nothing (M6 is owner-only).
	var pub searchResp
	if code := get(t, ts, "bob", "/api/v1/search?q=omim", &pub); code != http.StatusOK {
		t.Fatalf("public search status = %d", code)
	}
	if len(pub.Hits) != 0 {
		t.Fatalf("module privacy leaked over HTTP: %+v", pub.Hits)
	}
	// Bad request: empty query.
	if code := get(t, ts, "alice", "/api/v1/search?q=", nil); code != http.StatusBadRequest {
		t.Fatalf("empty query status = %d", code)
	}
}

func TestProvenanceRetrievalAndMasking(t *testing.T) {
	ts, _, e := newTestServer(t)
	var progID, internalID string
	for id, it := range e.Items {
		switch it.Attr {
		case "prognosis":
			progID = id
		case "snp_set":
			internalID = id
		}
	}
	var body struct {
		Provenance *exec.Execution `json:"provenance"`
	}
	path := fmt.Sprintf("/api/v1/provenance?spec=disease-susceptibility&exec=E1&item=%s", progID)
	if code := get(t, ts, "alice", path, &body); code != http.StatusOK {
		t.Fatalf("owner provenance status = %d", code)
	}
	if body.Provenance == nil || len(body.Provenance.Nodes) < 5 {
		t.Fatalf("owner provenance too small: %+v", body.Provenance)
	}
	// The public user gets the collapsed view with snps masked.
	var pub struct {
		Provenance *exec.Execution `json:"provenance"`
	}
	if code := get(t, ts, "bob", path, &pub); code != http.StatusOK {
		t.Fatalf("public provenance status = %d", code)
	}
	for _, it := range pub.Provenance.Items {
		if it.Attr == "snps" && !it.Redacted {
			t.Fatal("protected snps value served unredacted over HTTP")
		}
	}
	// Unknown item → 403, same as a hidden one: the engine deliberately
	// does not distinguish "absent" from "not visible at your level",
	// so the API cannot be used as an existence oracle.
	if code := get(t, ts, "alice", "/api/v1/provenance?spec=disease-susceptibility&exec=E1&item=nope", nil); code != http.StatusForbidden {
		t.Fatalf("unknown item status = %d", code)
	}
	_ = internalID
}

// TestPolicyDenialLowPrivilege is the policy-denial e2e path: an item
// that exists but is outside the public user's access view answers 403,
// and the error body names no value.
func TestPolicyDenialLowPrivilege(t *testing.T) {
	ts, _, e := newTestServer(t)
	var internalID string
	for id, it := range e.Items {
		if it.Attr == "snp_set" {
			internalID = id
		}
	}
	path := fmt.Sprintf("/api/v1/provenance?spec=disease-susceptibility&exec=E1&item=%s", internalID)
	var errBody errorBody
	if code := get(t, ts, "bob", path, &errBody); code != http.StatusForbidden {
		t.Fatalf("denial status = %d, want 403", code)
	}
	if errBody.Error == "" {
		t.Fatal("empty denial error body")
	}
	// The same item is retrievable by the owner — the denial is policy,
	// not absence.
	if code := get(t, ts, "alice", path, nil); code != http.StatusOK {
		t.Fatalf("owner status for same item = %d", code)
	}
}

func TestAuthRequired(t *testing.T) {
	ts, _, _ := newTestServer(t)
	if code := get(t, ts, "", "/api/v1/stats", nil); code != http.StatusUnauthorized {
		t.Fatalf("missing user status = %d", code)
	}
	if code := get(t, ts, "mallory", "/api/v1/stats", nil); code != http.StatusUnauthorized {
		t.Fatalf("unknown user status = %d", code)
	}
	// The user query parameter works as a header substitute (curl
	// convenience documented in the README).
	if code := get(t, ts, "", "/api/v1/stats?user=alice", nil); code != http.StatusOK {
		t.Fatalf("user param status = %d", code)
	}
}

func TestQueryAndReachEndpoints(t *testing.T) {
	ts, _, _ := newTestServer(t)
	var q struct {
		Answers []queryAnswer `json:"answers"`
	}
	path := `/api/v1/query?spec=disease-susceptibility&exec=E1&q=` +
		`MATCH%20a%20%3D%20%22expand%20snp%22%2C%20b%20%3D%20%22query%20omim%22%20WHERE%20a%20~%3E%20b`
	if code := get(t, ts, "alice", path, &q); code != http.StatusOK {
		t.Fatalf("query status = %d", code)
	}
	if len(q.Answers) != 1 || len(q.Answers[0].Bindings) != 1 {
		t.Fatalf("answers = %+v", q.Answers)
	}
	// QueryAll form (no exec parameter).
	var all struct {
		Answers []queryAnswer `json:"answers"`
	}
	if code := get(t, ts, "alice", "/api/v1/query?spec=disease-susceptibility&q=MATCH%20a%20%3D%20%22reformat%22", &all); code != http.StatusOK {
		t.Fatalf("query-all status = %d", code)
	}
	if len(all.Answers) != 1 {
		t.Fatalf("query-all answers = %+v", all.Answers)
	}
	// Unknown spec → 404; malformed query → 400.
	if code := get(t, ts, "alice", "/api/v1/query?spec=nope&exec=E1&q=MATCH%20a%20%3D%20%22x%22", nil); code != http.StatusNotFound {
		t.Fatalf("unknown spec status = %d", code)
	}
	if code := get(t, ts, "alice", "/api/v1/query?spec=disease-susceptibility&exec=E1&q=garbage", nil); code != http.StatusBadRequest {
		t.Fatalf("garbage query status = %d", code)
	}
	// zoom without exec is a contradiction, not a silent QueryAll.
	if code := get(t, ts, "alice", "/api/v1/query?spec=disease-susceptibility&q=MATCH%20a%20%3D%20%22reformat%22&zoom=1", nil); code != http.StatusBadRequest {
		t.Fatalf("zoom without exec status = %d", code)
	}

	var reach struct {
		Reaches bool `json:"reaches"`
	}
	if code := get(t, ts, "alice", "/api/v1/reach?spec=disease-susceptibility&from=M12&to=M11", &reach); code != http.StatusOK {
		t.Fatalf("reach status = %d", code)
	}
	if !reach.Reaches {
		t.Fatal("M12 -> M11 should reach for owner")
	}
}

func TestSpecsAndStats(t *testing.T) {
	ts, _, _ := newTestServer(t)
	var specs struct {
		Specs []specInfo `json:"specs"`
	}
	if code := get(t, ts, "carol", "/api/v1/specs", &specs); code != http.StatusOK {
		t.Fatalf("specs status = %d", code)
	}
	if len(specs.Specs) != 1 || specs.Specs[0].ID != "disease-susceptibility" ||
		len(specs.Specs[0].Executions) != 1 {
		t.Fatalf("specs = %+v", specs.Specs)
	}
	var st statsBody
	if code := get(t, ts, "carol", "/api/v1/stats", &st); code != http.StatusOK {
		t.Fatalf("stats status = %d", code)
	}
	if st.Specs != 1 || st.Executions != 1 || st.Users != 3 || st.IndexTerms == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestParallelClients drives the full stack (HTTP transport + sharded
// engine) from many concurrent clients mixing search, provenance and
// query traffic at different privilege levels; run under -race this is
// the end-to-end concurrency gate of the ISSUE.
func TestParallelClients(t *testing.T) {
	ts, _, e := newTestServer(t)
	var progID string
	for id, it := range e.Items {
		if it.Attr == "prognosis" {
			progID = id
		}
	}
	users := []string{"alice", "bob", "carol"}
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			user := users[c%len(users)]
			for i := 0; i < 20; i++ {
				var sr searchResp
				if code, err := tryGet(ts, user, "/api/v1/search?q=database", &sr); err != nil || code != http.StatusOK {
					t.Errorf("client %d: search status %d err %v", c, code, err)
					return
				}
				path := fmt.Sprintf("/api/v1/provenance?spec=disease-susceptibility&exec=E1&item=%s", progID)
				if code, err := tryGet(ts, user, path, nil); err != nil || code != http.StatusOK {
					t.Errorf("client %d: provenance status %d err %v", c, code, err)
					return
				}
				if code, err := tryGet(ts, user, "/api/v1/stats", nil); err != nil || code != http.StatusOK {
					t.Errorf("client %d: stats status %d err %v", c, code, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
}

// TestSearchPagination drives limit/offset through the search endpoint:
// windows must tile the full result list and report the pre-pagination
// total.
func TestSearchPagination(t *testing.T) {
	ts, r, _ := newTestServer(t)
	// Register more searchable specs so there is something to paginate.
	for i := 0; i < 4; i++ {
		s, err := workload.RandomSpec(workload.SpecConfig{
			Seed: int64(i), ID: fmt.Sprintf("p%d", i), Depth: 3, Fanout: 2, Chain: 4, SkipProb: 0.2,
		})
		if err != nil {
			t.Fatalf("RandomSpec: %v", err)
		}
		if err := r.AddSpec(s, nil); err != nil {
			t.Fatalf("AddSpec: %v", err)
		}
	}
	var full struct {
		Hits  []json.RawMessage `json:"hits"`
		Total int               `json:"total"`
	}
	if code := get(t, ts, "alice", "/api/v1/search?q=query", &full); code != http.StatusOK {
		t.Fatalf("full search: %d", code)
	}
	if full.Total != len(full.Hits) || full.Total < 2 {
		t.Fatalf("need >=2 hits to paginate, total=%d hits=%d", full.Total, len(full.Hits))
	}
	var paged struct {
		Hits   []json.RawMessage `json:"hits"`
		Total  int               `json:"total"`
		Offset int               `json:"offset"`
	}
	var seen []string
	for off := 0; off < full.Total; off++ {
		path := fmt.Sprintf("/api/v1/search?q=query&limit=1&offset=%d", off)
		if code := get(t, ts, "alice", path, &paged); code != http.StatusOK {
			t.Fatalf("paged search: %d", code)
		}
		if len(paged.Hits) != 1 || paged.Total != full.Total || paged.Offset != off {
			t.Fatalf("page %d = %d hits, total %d, offset %d", off, len(paged.Hits), paged.Total, paged.Offset)
		}
		seen = append(seen, string(paged.Hits[0]))
	}
	for i, h := range seen {
		if h != string(full.Hits[i]) {
			t.Fatalf("page %d differs from full listing", i)
		}
	}
	// Offset past the end: empty page, total intact.
	if code := get(t, ts, "alice", fmt.Sprintf("/api/v1/search?q=query&offset=%d", full.Total+5), &paged); code != http.StatusOK {
		t.Fatalf("past-end page: %d", code)
	}
	if len(paged.Hits) != 0 || paged.Total != full.Total {
		t.Fatalf("past-end page = %d hits, total %d", len(paged.Hits), paged.Total)
	}
	// Bad parameters are 400s.
	for _, bad := range []string{"limit=-1", "limit=x", "offset=-2"} {
		if code := get(t, ts, "alice", "/api/v1/search?q=query&"+bad, nil); code != http.StatusBadRequest {
			t.Fatalf("%s accepted: %d", bad, code)
		}
	}
}

// TestQueryPagination paginates the all-executions query endpoint.
func TestQueryPagination(t *testing.T) {
	ts, r, _ := newTestServer(t)
	s := r.Spec("disease-susceptibility")
	for i := 2; i <= 4; i++ {
		e, err := exec.NewRunner(s, nil).Run(fmt.Sprintf("E%d", i), map[string]exec.Value{
			"snps": exec.Value(fmt.Sprintf("rs%d", i)), "ethnicity": "e", "lifestyle": "l",
			"family_history": "f", "symptoms": "s",
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if err := r.AddExecution(e); err != nil {
			t.Fatalf("AddExecution: %v", err)
		}
	}
	q := "/api/v1/query?spec=disease-susceptibility&q=" + "MATCH+a+%3D+%22reformat%22"
	var full struct {
		Answers []struct {
			Execution string `json:"execution"`
		} `json:"answers"`
		Total int `json:"total"`
	}
	if code := get(t, ts, "alice", q, &full); code != http.StatusOK {
		t.Fatalf("query: %d", code)
	}
	if full.Total != 4 || len(full.Answers) != 4 {
		t.Fatalf("expected 4 answers, got total=%d len=%d", full.Total, len(full.Answers))
	}
	var paged struct {
		Answers []struct {
			Execution string `json:"execution"`
		} `json:"answers"`
		Total int `json:"total"`
	}
	if code := get(t, ts, "alice", q+"&limit=2&offset=1", &paged); code != http.StatusOK {
		t.Fatalf("paged query: %d", code)
	}
	if paged.Total != 4 || len(paged.Answers) != 2 {
		t.Fatalf("paged = total %d, %d answers", paged.Total, len(paged.Answers))
	}
	if paged.Answers[0].Execution != full.Answers[1].Execution {
		t.Fatalf("offset window wrong: %s vs %s", paged.Answers[0].Execution, full.Answers[1].Execution)
	}
}

// TestMetricsEndpoint scrapes /metrics (unauthenticated) and checks the
// Prometheus exposition carries the repository and derived-state
// counters.
func TestMetricsEndpoint(t *testing.T) {
	ts, _, _ := newTestServer(t)
	// Generate some cache traffic so counters move.
	for i := 0; i < 2; i++ {
		if code := get(t, ts, "alice", "/api/v1/search?q=database", nil); code != http.StatusOK {
			t.Fatalf("search: %d", code)
		}
	}
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, metric := range []string{
		"provpriv_specs 1",
		"provpriv_index_segments 1",
		"provpriv_result_cache_hits_total 1",
		"provpriv_result_cache_misses_total 1",
		"provpriv_index_postings",
		"provpriv_corpus_deltas_total",
		"provpriv_corpus_rebuilds_total",
		"provpriv_view_cache_hits_total",
		"provpriv_index_snapshot_swaps_total",
	} {
		if !strings.Contains(text, metric) {
			t.Fatalf("metrics missing %q:\n%s", metric, text)
		}
	}
	// /stats carries the same counters as JSON.
	var st struct {
		IndexSegments  int   `json:"index_segments"`
		CorpusLevels   int   `json:"corpus_levels"`
		CorpusRebuilds int64 `json:"corpus_rebuilds"`
	}
	if code := get(t, ts, "alice", "/api/v1/stats", &st); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if st.IndexSegments != 1 || st.CorpusLevels == 0 || st.CorpusRebuilds == 0 {
		t.Fatalf("stats counters: %+v", st)
	}
}

// scrapeMetric fetches /metrics and returns the value of one
// single-sample metric line (name + space + integer).
func scrapeMetric(t *testing.T, ts *httptest.Server, name string) int64 {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(body), "\n") {
		var v int64
		if n, _ := fmt.Sscanf(line, name+" %d", &v); n == 1 {
			return v
		}
	}
	t.Fatalf("metric %q not in /metrics:\n%s", name, body)
	return 0
}

// TestProvenanceTaintEscapeHatch: by default a public user's provenance
// carries no embedded protected value and taint=off is refused outright
// (it would reopen the leak for any caller); on a server the operator
// opted in with AllowDisableTaint, taint=off reopens the hole; anything
// else is rejected.
func TestProvenanceTaintEscapeHatch(t *testing.T) {
	ts, r, e := newTestServer(t)
	var progID string
	for id, it := range e.Items {
		if it.Attr == "prognosis" {
			progID = id
		}
	}
	path := fmt.Sprintf("/api/v1/provenance?spec=disease-susceptibility&exec=E1&item=%s", progID)
	var body struct {
		Provenance *exec.Execution `json:"provenance"`
	}
	if code := get(t, ts, "bob", path, &body); code != http.StatusOK {
		t.Fatalf("provenance status = %d", code)
	}
	for id, it := range body.Provenance.Items {
		if strings.Contains(string(it.Value), "rs1") {
			t.Errorf("taint-masked provenance item %s embeds rs1: %q", id, it.Value)
		}
	}
	// The default server refuses the hatch: no caller-controlled bypass
	// of the guarantee.
	if code := get(t, ts, "bob", path+"&taint=off", nil); code != http.StatusForbidden {
		t.Fatalf("taint=off on default server = %d, want 403", code)
	}

	debugSrv := New(r)
	debugSrv.AllowDisableTaint = true
	tsDebug := httptest.NewServer(debugSrv)
	defer tsDebug.Close()
	var leaky struct {
		Provenance *exec.Execution `json:"provenance"`
	}
	if code := get(t, tsDebug, "bob", path+"&taint=off", &leaky); code != http.StatusOK {
		t.Fatalf("taint=off status = %d", code)
	}
	var reproduced bool
	for _, it := range leaky.Provenance.Items {
		if strings.Contains(string(it.Value), "rs1") {
			reproduced = true
		}
	}
	if !reproduced {
		t.Fatal("taint=off did not reproduce the embedded-value leak")
	}
	if code := get(t, ts, "bob", path+"&taint=maybe", nil); code != http.StatusBadRequest {
		t.Fatalf("taint=maybe status = %d, want 400", code)
	}
}

// TestTaintMetricsMonotone: the taint_* counters appear in /metrics,
// only grow (monotone *_total gauges like the PR 2 counters), and the
// per-shard taint-set cache hit/miss breakdown shows up in /stats.
func TestTaintMetricsMonotone(t *testing.T) {
	ts, _, e := newTestServer(t)
	var progID string
	for id, it := range e.Items {
		if it.Attr == "prognosis" {
			progID = id
		}
	}
	path := fmt.Sprintf("/api/v1/provenance?spec=disease-susceptibility&exec=E1&item=%s", progID)
	if code := get(t, ts, "bob", path, nil); code != http.StatusOK {
		t.Fatalf("provenance: %d", code)
	}
	rewritten1 := scrapeMetric(t, ts, "provpriv_taint_items_rewritten_total")
	redacted1 := scrapeMetric(t, ts, "provpriv_taint_items_redacted_total")
	misses1 := scrapeMetric(t, ts, "provpriv_taint_cache_misses_total")
	if rewritten1 == 0 {
		t.Fatal("public provenance of prognosis rewrote nothing")
	}
	if misses1 == 0 {
		t.Fatal("first taint analysis did not miss the cache")
	}
	// More traffic: every counter must be non-decreasing, and the
	// second analysis of the same execution must hit the cache.
	for i := 0; i < 3; i++ {
		if code := get(t, ts, "bob", path, nil); code != http.StatusOK {
			t.Fatalf("provenance #%d: %d", i, code)
		}
	}
	rewritten2 := scrapeMetric(t, ts, "provpriv_taint_items_rewritten_total")
	redacted2 := scrapeMetric(t, ts, "provpriv_taint_items_redacted_total")
	hits2 := scrapeMetric(t, ts, "provpriv_taint_cache_hits_total")
	misses2 := scrapeMetric(t, ts, "provpriv_taint_cache_misses_total")
	maskedHits := scrapeMetric(t, ts, "provpriv_masked_exec_cache_hits_total")
	maskedMisses := scrapeMetric(t, ts, "provpriv_masked_exec_cache_misses_total")
	if rewritten2 < rewritten1 || redacted2 < redacted1 || misses2 < misses1 {
		t.Fatalf("taint counters regressed: rewritten %d→%d redacted %d→%d misses %d→%d",
			rewritten1, rewritten2, redacted1, redacted2, misses1, misses2)
	}
	if rewritten2 == rewritten1 {
		t.Fatal("repeat provenance did not replay the masking report")
	}
	// Repeat provenance serves the cached masked snapshot: the taint-set
	// cache is consulted only on the snapshot fill (its one miss above),
	// while the masked-exec cache takes every warm request.
	if hits2+misses2 == 0 {
		t.Fatal("taint-set cache never consulted")
	}
	if maskedMisses == 0 {
		t.Fatal("first provenance did not miss the masked-exec cache")
	}
	if maskedHits == 0 {
		t.Fatal("repeat provenance did not hit the masked-exec cache")
	}

	var st struct {
		TaintCacheHits    int64                          `json:"taint_cache_hits"`
		TaintCacheMisses  int64                          `json:"taint_cache_misses"`
		TaintCache        map[string]repo.TaintCacheStat `json:"taint_cache"`
		MaskedCacheHits   int64                          `json:"masked_exec_cache_hits"`
		MaskedCacheMisses int64                          `json:"masked_exec_cache_misses"`
		MaskedCache       map[string]repo.TaintCacheStat `json:"masked_exec_cache"`
	}
	if code := get(t, ts, "alice", "/api/v1/stats", &st); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if st.TaintCacheHits != hits2 || st.TaintCacheMisses != misses2 {
		t.Fatalf("stats/metrics disagree: hits %d vs %d, misses %d vs %d",
			st.TaintCacheHits, hits2, st.TaintCacheMisses, misses2)
	}
	if st.MaskedCacheHits != maskedHits || st.MaskedCacheMisses != maskedMisses {
		t.Fatalf("masked stats/metrics disagree: hits %d vs %d, misses %d vs %d",
			st.MaskedCacheHits, maskedHits, st.MaskedCacheMisses, maskedMisses)
	}
	sh, ok := st.TaintCache["disease-susceptibility"]
	if !ok || sh.Hits+sh.Misses == 0 {
		t.Fatalf("per-shard taint cache stats missing: %+v", st.TaintCache)
	}
	msh, ok := st.MaskedCache["disease-susceptibility"]
	if !ok || msh.Hits+msh.Misses == 0 {
		t.Fatalf("per-shard masked cache stats missing: %+v", st.MaskedCache)
	}
}

// TestStorageMetricsExported: a server started with a measured storage
// backend surfaces backend counters in /metrics and /stats, and a
// wire-triggered save moves them.
func TestStorageMetricsExported(t *testing.T) {
	dir := t.TempDir()
	r := repo.New()
	s := workflow.DiseaseSusceptibility()
	if err := r.AddSpec(s, nil); err != nil {
		t.Fatalf("AddSpec: %v", err)
	}
	r.AddUser(privacy.User{Name: "alice", Level: privacy.Owner, Group: "owners"})
	b, err := storage.OpenFlat(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := storage.NewMeasure(b)
	if err := r.BindStorage(m, dir); err != nil {
		t.Fatal(err)
	}
	srv := New(r)
	srv.Store = m
	srv.SaveDir = dir
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	t.Cleanup(func() { r.CloseStorage() })

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/api/v1/save", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Prov-User", "alice")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("save: %d", resp.StatusCode)
	}

	if v := scrapeMetric(t, ts, "provpriv_storage_commits_total"); v < 1 {
		t.Fatalf("storage_commits_total = %d after save", v)
	}
	if v := scrapeMetric(t, ts, "provpriv_storage_checkpoints_total"); v < 1 {
		t.Fatalf("storage_checkpoints_total = %d after save", v)
	}
	var st struct {
		Storage *storage.MeasureStats `json:"storage"`
	}
	if code := get(t, ts, "alice", "/api/v1/stats", &st); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if st.Storage == nil || st.Storage.Commits < 1 || st.Storage.CheckpointRecords < 1 {
		t.Fatalf("stats storage block: %+v", st.Storage)
	}

	// A server with no bound backend omits the block and the metrics.
	ts2, _, _ := newTestServer(t)
	resp2, err := ts2.Client().Get(ts2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if strings.Contains(string(body), "provpriv_storage_") {
		t.Fatal("storage metrics exported without a bound backend")
	}
	var st2 map[string]json.RawMessage
	if code := get(t, ts2, "alice", "/api/v1/stats", &st2); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if _, ok := st2["storage"]; ok {
		t.Fatal("stats storage block present without a bound backend")
	}
}
