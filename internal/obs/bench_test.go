package obs

import (
	"context"
	"testing"
	"time"
)

// BenchmarkSpanStartEnd measures the cost of one StartSpan/End pair
// inside a sampled trace — the per-span price instrumented code pays on
// a traced request.
func BenchmarkSpanStartEnd(b *testing.B) {
	tracer := NewTracer(4, 1, time.Hour)
	ctx, done := tracer.StartRoot(context.Background(), "bench")
	defer done()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%maxSpans == 0 {
			// Fresh trace so the span cap never turns spans into no-ops.
			done()
			ctx, done = tracer.StartRoot(context.Background(), "bench")
		}
		_, sp := StartSpan(ctx, "op")
		sp.End()
	}
}

// BenchmarkSpanNoTrace measures StartSpan on an unsampled context — the
// price every instrumented call site pays when tracing is off or the
// request wasn't sampled. Expected: 0 allocs.
func BenchmarkSpanNoTrace(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, sp := StartSpan(ctx, "op")
		sp.End()
	}
}

// BenchmarkHistogramObserve measures one latency observation.
func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(3 * time.Millisecond)
	}
}
