// Package obs is the engine's zero-dependency observability layer:
// structured logging (log/slog construction helpers), a composable HTTP
// middleware chain (request-id generation/propagation, per-route ×
// status-class latency histograms in Prometheus exposition, in-flight
// and response-size accounting, panic recovery), an in-process tracing
// API (context-threaded spans collected into a lock-cheap ring buffer
// of completed traces), and Go runtime gauges.
//
// Design constraints, in order:
//
//  1. The warm request path must stay allocation-free. The middleware
//     pools its response recorders, histograms are fixed arrays of
//     atomics keyed by the mux's matched pattern (an RWMutex map — no
//     interface boxing), and tracing is sampled: an unsampled request
//     never touches the tracer, so the only per-request allocations are
//     the generated request id and its response-header slot — and none
//     at all when the client already sent an X-Request-Id.
//  2. No dependencies. Everything renders straight to the Prometheus
//     text exposition format; ValidateExposition keeps the page honest.
//  3. Instrumentation is optional everywhere: StartSpan on a context
//     without a sampled trace is a no-op returning an inert Span, and
//     every helper tolerates servers built without an Observer.
package obs

import "net/http"

// Middleware is one composable layer of an HTTP middleware chain.
type Middleware func(http.Handler) http.Handler

// Chain wraps h in the given middlewares, first middleware outermost —
// Chain(h, a, b) serves a(b(h)) — so the request-id/metrics layer can
// sit outside rate limiting or auth layers added later.
func Chain(h http.Handler, mws ...Middleware) http.Handler {
	for i := len(mws) - 1; i >= 0; i-- {
		h = mws[i](h)
	}
	return h
}
