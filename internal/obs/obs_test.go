package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestHistogramObserveAndSnapshot(t *testing.T) {
	var h Histogram
	h.Observe(200 * time.Microsecond) // bucket 0 (le 0.0005)
	h.Observe(700 * time.Microsecond) // bucket 1 (le 0.001)
	h.Observe(30 * time.Second)       // +Inf bucket
	h.Observe(-time.Second)           // clamped to 0, bucket 0

	cum, count, sum := h.snapshot()
	if count != 4 {
		t.Fatalf("count = %d, want 4", count)
	}
	if cum[0] != 2 || cum[1] != 3 || cum[numBuckets-1] != 4 {
		t.Fatalf("cumulative = %v", cum)
	}
	for i := 1; i < numBuckets; i++ {
		if cum[i] < cum[i-1] {
			t.Fatalf("bucket %d not cumulative: %v", i, cum)
		}
	}
	want := 0.0002 + 0.0007 + 30
	if diff := sum - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("sum = %v, want %v", sum, want)
	}
}

func TestMetricsExpositionValid(t *testing.T) {
	m := NewMetrics()
	m.observe("GET /api/v1/search", 200, 3*time.Millisecond, 512)
	m.observe("GET /api/v1/search", 404, time.Millisecond, 64)
	m.observe("POST /api/v1/executions", 201, 10*time.Millisecond, 128)
	m.observe("weird", 99, time.Millisecond, 0) // 0xx class
	m.ObserveTask("compact", 2*time.Millisecond, 40*time.Millisecond)
	m.panics.Add(1)

	var b bytes.Buffer
	m.WritePrometheus(&b)
	if err := ValidateExposition(b.Bytes()); err != nil {
		t.Fatalf("exposition invalid: %v\npage:\n%s", err, b.String())
	}
	page := b.String()
	for _, want := range []string{
		`provpriv_http_requests_total{route="GET /api/v1/search",status="2xx"} 1`,
		`provpriv_http_requests_total{route="weird",status="0xx"} 1`,
		`provpriv_http_response_bytes_total{route="GET /api/v1/search"} 576`,
		`provpriv_tasks_queue_wait_seconds_count{kind="compact"} 1`,
		`provpriv_http_panics_total 1`,
		`provpriv_go_goroutines`,
	} {
		if !strings.Contains(page, want) {
			t.Errorf("page missing %q", want)
		}
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"no family":      "some_metric 1\n",
		"bad name":       "# HELP 9bad x\n# TYPE 9bad counter\n9bad 1\n",
		"duplicate HELP": "# HELP a x\n# HELP a x\n# TYPE a counter\na 1\n",
		"duplicate TYPE": "# HELP a x\n# TYPE a counter\n# TYPE a counter\na 1\n",
		"bad value":      "# HELP a x\n# TYPE a counter\na pig\n",
		"non-cumulative": "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
		"no +Inf":        "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_sum 1\nh_count 5\n",
		"count mismatch": "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 4\n",
		"missing sum":    "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_count 5\n",
		"le not sorted":  "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 0\nh_count 1\n",
		"bare histogram": "# HELP h x\n# TYPE h histogram\nh 5\n",
		"missing le":     "# HELP h x\n# TYPE h histogram\nh_bucket 5\nh_sum 1\nh_count 5\n",
	}
	for name, page := range cases {
		if err := ValidateExposition([]byte(page)); err == nil {
			t.Errorf("%s: expected error, got nil", name)
		}
	}
	good := "# HELP a x\n# TYPE a counter\na{l=\"v,with\\\"comma\"} 1\n"
	if err := ValidateExposition([]byte(good)); err != nil {
		t.Errorf("quoted-comma labels rejected: %v", err)
	}
}

func TestExpositionSeries(t *testing.T) {
	page := "# HELP a x\n# TYPE a counter\na{l=\"v\"} 3\nb 1.5\n"
	s, err := ExpositionSeries([]byte(page))
	if err != nil {
		t.Fatal(err)
	}
	if s[`a{l="v"}`] != 3 || s["b"] != 1.5 {
		t.Fatalf("series = %v", s)
	}
}

// obsServer builds an Observer-wrapped mux echoing a small body.
func obsServer(t *testing.T, tracer *Tracer, logs io.Writer) (*Observer, http.Handler) {
	t.Helper()
	if logs == nil {
		logs = io.Discard
	}
	logger := slog.New(slog.NewJSONHandler(logs, nil))
	o := NewObserver(NewMetrics(), logger, tracer)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /echo", func(w http.ResponseWriter, r *http.Request) {
		SetPrincipal(w, "alice")
		io.WriteString(w, "ok")
	})
	mux.HandleFunc("GET /boom", func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	})
	mux.HandleFunc("GET /traced", func(w http.ResponseWriter, r *http.Request) {
		ctx, sp := StartSpan(r.Context(), "outer")
		_, inner := StartSpan(ctx, "inner")
		time.Sleep(time.Millisecond)
		inner.End()
		sp.End()
		w.WriteHeader(http.StatusNoContent)
	})
	return o, Chain(mux, o.Middleware)
}

func TestMiddlewareRequestID(t *testing.T) {
	o, h := obsServer(t, nil, nil)

	// Generated id: echoed in the response header.
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/echo", nil))
	rid := rr.Header().Get("X-Request-Id")
	if len(rid) != 32 {
		t.Fatalf("generated id %q, want 32 hex chars", rid)
	}

	// Valid client id: propagated (visible to SetPrincipal-side code),
	// not echoed.
	rr = httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/echo", nil)
	req.Header.Set("X-Request-Id", "client-id-1")
	h.ServeHTTP(rr, req)
	if got := rr.Header().Get("X-Request-Id"); got != "" {
		t.Fatalf("client id echoed as %q, want no echo", got)
	}

	// Hostile client id: replaced.
	rr = httptest.NewRecorder()
	req = httptest.NewRequest("GET", "/echo", nil)
	req.Header.Set("X-Request-Id", "evil\nid")
	h.ServeHTTP(rr, req)
	if got := rr.Header().Get("X-Request-Id"); len(got) != 32 {
		t.Fatalf("hostile id not replaced: %q", got)
	}

	if got := o.Metrics.InFlight(); got != 0 {
		t.Fatalf("in-flight after completion = %d", got)
	}
	var b bytes.Buffer
	o.Metrics.WritePrometheus(&b)
	if err := ValidateExposition(b.Bytes()); err != nil {
		t.Fatalf("exposition invalid after requests: %v", err)
	}
	if !strings.Contains(b.String(), `provpriv_http_requests_total{route="GET /echo",status="2xx"} 3`) {
		t.Fatalf("route counter missing:\n%s", b.String())
	}
}

func TestMiddlewarePanicRecovery(t *testing.T) {
	var logs bytes.Buffer
	o, h := obsServer(t, nil, &logs)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/boom", nil))
	if rr.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rr.Code)
	}
	var body struct {
		Error     string `json:"error"`
		RequestID string `json:"request_id"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
		t.Fatalf("panic body not JSON: %v (%q)", err, rr.Body.String())
	}
	if body.Error == "" || len(body.RequestID) != 32 {
		t.Fatalf("panic body = %+v", body)
	}
	if o.Metrics.Panics() != 1 {
		t.Fatalf("panics = %d", o.Metrics.Panics())
	}
	if !strings.Contains(logs.String(), "handler panic") || !strings.Contains(logs.String(), body.RequestID) {
		t.Fatalf("panic log missing request id: %s", logs.String())
	}
	if o.Metrics.InFlight() != 0 {
		t.Fatalf("in-flight leaked after panic")
	}
}

func TestTracerSamplingAndSpanTree(t *testing.T) {
	tracer := NewTracer(8, 1, time.Nanosecond) // every request, everything slow
	var logs bytes.Buffer
	_, h := obsServer(t, tracer, &logs)

	rr := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/traced", nil)
	req.Header.Set("X-Request-Id", "trace-req-1")
	h.ServeHTTP(rr, req)

	views := tracer.Recent()
	if len(views) != 1 {
		t.Fatalf("traces = %d, want 1", len(views))
	}
	v := views[0]
	if v.ID != "trace-req-1" || v.Name != "GET /traced" || v.Status != 204 || !v.Slow {
		t.Fatalf("trace view = %+v", v)
	}
	if len(v.Spans) != 1 || v.Spans[0].Name != "outer" {
		t.Fatalf("root spans = %+v", v.Spans)
	}
	if len(v.Spans[0].Children) != 1 || v.Spans[0].Children[0].Name != "inner" {
		t.Fatalf("children = %+v", v.Spans[0].Children)
	}
	if v.Spans[0].DurNs <= 0 || v.Spans[0].Children[0].DurNs <= 0 {
		t.Fatalf("span durations not stamped: %+v", v.Spans)
	}
	if !strings.Contains(logs.String(), "slow request") {
		t.Fatalf("slow-request log missing: %s", logs.String())
	}
}

func TestTracerSampleEvery(t *testing.T) {
	tracer := NewTracer(64, 3, time.Hour)
	_, h := obsServer(t, tracer, nil)
	for i := 0; i < 9; i++ {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", "/echo", nil))
	}
	if got := len(tracer.Recent()); got != 3 {
		t.Fatalf("sampled %d of 9 at 1-in-3", got)
	}
	off := NewTracer(64, 0, time.Hour)
	_, h = obsServer(t, off, nil)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/echo", nil))
	if got := len(off.Recent()); got != 0 {
		t.Fatalf("sampleEvery=0 still traced %d", got)
	}
}

func TestTracerRingEviction(t *testing.T) {
	tracer := NewTracer(2, 1, time.Hour)
	_, h := obsServer(t, tracer, nil)
	for _, id := range []string{"first", "second", "third"} {
		rr := httptest.NewRecorder()
		req := httptest.NewRequest("GET", "/echo", nil)
		req.Header.Set("X-Request-Id", id)
		h.ServeHTTP(rr, req)
	}
	views := tracer.Recent()
	if len(views) != 2 {
		t.Fatalf("ring size = %d", len(views))
	}
	if views[0].ID != "third" || views[1].ID != "second" {
		t.Fatalf("ring order = %s, %s (want third, second)", views[0].ID, views[1].ID)
	}
}

func TestStartSpanWithoutTrace(t *testing.T) {
	ctx, sp := StartSpan(context.Background(), "orphan")
	if sp.Active() {
		t.Fatal("span active without a trace")
	}
	sp.End() // must not panic
	if ctx != context.Background() {
		t.Fatal("no-op StartSpan rewrapped the context")
	}
}

func TestSpanCapDropsNotGrows(t *testing.T) {
	tracer := NewTracer(4, 1, time.Hour)
	ctx, done := tracer.StartRoot(context.Background(), "root")
	for i := 0; i < maxSpans+10; i++ {
		_, sp := StartSpan(ctx, "s")
		sp.End()
	}
	done()
	views := tracer.Recent()
	if len(views) != 1 {
		t.Fatalf("traces = %d", len(views))
	}
	if views[0].Dropped == 0 {
		t.Fatal("dropped counter not reported")
	}
}

func TestStartRootHookShape(t *testing.T) {
	tracer := NewTracer(4, 1, time.Nanosecond)
	ctx, done := tracer.StartRoot(context.Background(), "task.compact")
	_, sp := StartSpan(ctx, "inner")
	sp.End()
	done()
	views := tracer.Recent()
	if len(views) != 1 || views[0].Name != "task.compact" {
		t.Fatalf("views = %+v", views)
	}
	if len(views[0].Spans) != 1 || len(views[0].Spans[0].Children) != 1 {
		t.Fatalf("span tree = %+v", views[0].Spans)
	}
}

func TestNewLogger(t *testing.T) {
	var b bytes.Buffer
	l, err := NewLogger(&b, "json", "warn")
	if err != nil {
		t.Fatal(err)
	}
	l.Info("hidden")
	l.Warn("shown", "k", "v")
	if strings.Contains(b.String(), "hidden") || !strings.Contains(b.String(), "shown") {
		t.Fatalf("level filtering wrong: %s", b.String())
	}
	var rec map[string]any
	if err := json.Unmarshal(b.Bytes(), &rec); err != nil {
		t.Fatalf("not JSON: %v", err)
	}
	if _, err := NewLogger(&b, "yaml", "info"); err == nil {
		t.Fatal("bad format accepted")
	}
	if _, err := NewLogger(&b, "text", "loud"); err == nil {
		t.Fatal("bad level accepted")
	}
}

func TestRequestLoggerOutsideMiddleware(t *testing.T) {
	var b bytes.Buffer
	base := slog.New(slog.NewTextHandler(&b, nil))
	rr := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/x", nil)
	RequestLogger(base, rr, req).Info("hello")
	if !strings.Contains(b.String(), "path=/x") {
		t.Fatalf("log = %s", b.String())
	}
	// nil base must not panic.
	RequestLogger(nil, rr, req).Info("dropped")
}
