package obs

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// statusClasses label the histogram dimension derived from the response
// status code: index status/100, with 0 for anything outside 1xx–5xx.
var statusClasses = [...]string{"0xx", "1xx", "2xx", "3xx", "4xx", "5xx"}

// routeMetrics is the per-matched-pattern slot: one latency histogram
// per status class (the histogram's count doubles as the request
// counter) plus a response-byte counter.
type routeMetrics struct {
	classes [len(statusClasses)]Histogram
	bytes   atomic.Int64 //provlint:counter
}

// taskMetrics is the per-task-class slot: how long tasks waited for a
// worker and how long their attempt loops ran.
type taskMetrics struct {
	queueWait Histogram
	run       Histogram
}

// Metrics is the registry behind the middleware and the /metrics page:
// per-route × status-class latency histograms, response sizes, the
// in-flight gauge, panic and slow-request counters, and per-task-class
// queue-wait/run-duration histograms. The observe path takes one
// RWMutex read lock and touches only atomics — no allocation, no
// interface boxing.
type Metrics struct {
	mu     sync.RWMutex
	routes map[string]*routeMetrics

	taskMu sync.RWMutex
	tasks  map[string]*taskMetrics

	inflight atomic.Int64
	panics   atomic.Int64 //provlint:counter
	slow     atomic.Int64 //provlint:counter
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		routes: make(map[string]*routeMetrics),
		tasks:  make(map[string]*taskMetrics),
	}
}

// observe records one completed request under its matched route
// pattern.
func (m *Metrics) observe(route string, status int, d time.Duration, bytes int64) {
	m.mu.RLock()
	rm := m.routes[route]
	m.mu.RUnlock()
	if rm == nil {
		m.mu.Lock()
		if rm = m.routes[route]; rm == nil {
			rm = &routeMetrics{}
			m.routes[route] = rm
		}
		m.mu.Unlock()
	}
	cls := status / 100
	if cls < 1 || cls >= len(statusClasses) {
		cls = 0
	}
	rm.classes[cls].Observe(d)
	if bytes > 0 {
		rm.bytes.Add(bytes)
	}
}

// ObserveTask records one terminal background task: how long it queued
// and how long its attempt loop ran. The signature matches the task
// runtime's observer hook so the two packages stay decoupled.
func (m *Metrics) ObserveTask(kind string, queueWait, run time.Duration) {
	m.taskMu.RLock()
	tm := m.tasks[kind]
	m.taskMu.RUnlock()
	if tm == nil {
		m.taskMu.Lock()
		if tm = m.tasks[kind]; tm == nil {
			tm = &taskMetrics{}
			m.tasks[kind] = tm
		}
		m.taskMu.Unlock()
	}
	tm.queueWait.Observe(queueWait)
	tm.run.Observe(run)
}

// InFlight returns the number of requests currently inside the
// middleware.
func (m *Metrics) InFlight() int64 { return m.inflight.Load() }

// Panics returns how many handler panics the middleware recovered.
func (m *Metrics) Panics() int64 { return m.panics.Load() }

// fmtFloat renders a float the exposition format accepts without
// trailing-zero noise.
func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// writeHistogramFamily renders one histogram metric family: a single
// HELP/TYPE header followed by _bucket/_sum/_count series per label
// set. labels are pre-rendered "k=\"v\"" fragments without the le pair.
func writeHistogramFamily(w io.Writer, name, help string, series []histSeries) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	for _, s := range series {
		cum, count, sum := s.h.snapshot()
		sep := ""
		if s.labels != "" {
			sep = ","
		}
		for i, bound := range durationBounds {
			fmt.Fprintf(w, "%s_bucket{%s%sle=\"%s\"} %d\n", name, s.labels, sep, fmtFloat(bound), cum[i])
		}
		fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, s.labels, sep, cum[numBuckets-1])
		if s.labels == "" {
			fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", name, fmtFloat(sum), name, count)
		} else {
			fmt.Fprintf(w, "%s_sum{%s} %s\n%s_count{%s} %d\n", name, s.labels, fmtFloat(sum), name, s.labels, count)
		}
	}
}

type histSeries struct {
	labels string
	h      *Histogram
}

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format under the provpriv_ prefix: the HTTP families,
// the task families, and the Go runtime gauges. Families are emitted
// with exactly one HELP/TYPE header each and deterministic series
// order, which ValidateExposition pins.
func (m *Metrics) WritePrometheus(w io.Writer) {
	m.mu.RLock()
	routes := make([]string, 0, len(m.routes))
	for r := range m.routes {
		routes = append(routes, r)
	}
	sort.Strings(routes)
	rms := make([]*routeMetrics, len(routes))
	for i, r := range routes {
		rms[i] = m.routes[r]
	}
	m.mu.RUnlock()

	fmt.Fprintf(w, "# HELP provpriv_http_in_flight_requests Requests currently being served.\n"+
		"# TYPE provpriv_http_in_flight_requests gauge\nprovpriv_http_in_flight_requests %d\n", m.inflight.Load())
	fmt.Fprintf(w, "# HELP provpriv_http_panics_total Handler panics recovered by the middleware.\n"+
		"# TYPE provpriv_http_panics_total counter\nprovpriv_http_panics_total %d\n", m.panics.Load())
	fmt.Fprintf(w, "# HELP provpriv_http_slow_requests_total Requests slower than the slow-request threshold.\n"+
		"# TYPE provpriv_http_slow_requests_total counter\nprovpriv_http_slow_requests_total %d\n", m.slow.Load())

	if len(routes) > 0 {
		fmt.Fprintf(w, "# HELP provpriv_http_requests_total Requests served, by matched route and status class.\n"+
			"# TYPE provpriv_http_requests_total counter\n")
		for i, route := range routes {
			for c, cls := range statusClasses {
				if n := rms[i].classes[c].Count(); n > 0 {
					fmt.Fprintf(w, "provpriv_http_requests_total{route=%q,status=%q} %d\n", route, cls, n)
				}
			}
		}
		var series []histSeries
		for i, route := range routes {
			for c, cls := range statusClasses {
				if rms[i].classes[c].Count() == 0 {
					continue
				}
				series = append(series, histSeries{
					labels: fmt.Sprintf("route=%q,status=%q", route, cls),
					h:      &rms[i].classes[c],
				})
			}
		}
		writeHistogramFamily(w, "provpriv_http_request_duration_seconds",
			"Request latency, by matched route and status class.", series)
		fmt.Fprintf(w, "# HELP provpriv_http_response_bytes_total Response body bytes written, by matched route.\n"+
			"# TYPE provpriv_http_response_bytes_total counter\n")
		for i, route := range routes {
			fmt.Fprintf(w, "provpriv_http_response_bytes_total{route=%q} %d\n", route, rms[i].bytes.Load())
		}
	}

	m.taskMu.RLock()
	kinds := make([]string, 0, len(m.tasks))
	for k := range m.tasks {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	tms := make([]*taskMetrics, len(kinds))
	for i, k := range kinds {
		tms[i] = m.tasks[k]
	}
	m.taskMu.RUnlock()
	if len(kinds) > 0 {
		waits := make([]histSeries, len(kinds))
		runs := make([]histSeries, len(kinds))
		for i, k := range kinds {
			waits[i] = histSeries{labels: fmt.Sprintf("kind=%q", k), h: &tms[i].queueWait}
			runs[i] = histSeries{labels: fmt.Sprintf("kind=%q", k), h: &tms[i].run}
		}
		writeHistogramFamily(w, "provpriv_tasks_queue_wait_seconds",
			"Time background tasks spent queued before a worker picked them up, by class.", waits)
		writeHistogramFamily(w, "provpriv_tasks_run_seconds",
			"Background task attempt-loop run time (including in-worker backoff), by class.", runs)
	}

	writeRuntimeGauges(w)
}

// writeRuntimeGauges renders process introspection: goroutines, heap,
// and GC totals. ReadMemStats briefly stops the world — scrape-path
// only, never request-path.
func writeRuntimeGauges(w io.Writer) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	var b strings.Builder
	gauge := func(name, help string, v string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", name, help, name, name, v)
	}
	counter := func(name, help string, v string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %s\n", name, help, name, name, v)
	}
	gauge("provpriv_go_goroutines", "Live goroutines.", strconv.Itoa(runtime.NumGoroutine()))
	gauge("provpriv_go_heap_alloc_bytes", "Bytes of allocated heap objects.", strconv.FormatUint(ms.HeapAlloc, 10))
	gauge("provpriv_go_heap_objects", "Live heap objects.", strconv.FormatUint(ms.HeapObjects, 10))
	counter("provpriv_go_gc_cycles_total", "Completed GC cycles.", strconv.FormatUint(uint64(ms.NumGC), 10))
	counter("provpriv_go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.",
		fmtFloat(float64(ms.PauseTotalNs)/1e9))
	io.WriteString(w, b.String())
}
