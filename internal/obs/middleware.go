package obs

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"math/rand/v2"
	"net/http"
	"runtime/debug"
	"sync"
	"time"
)

// Observer bundles the pieces the middleware threads through a request:
// the metrics registry, the process logger, and (optionally) the
// tracer. Any field may be nil except Metrics.
type Observer struct {
	Metrics *Metrics
	Logger  *slog.Logger
	Tracer  *Tracer

	pool sync.Pool
}

// NewObserver wires an Observer; tracer may be nil to disable tracing.
func NewObserver(m *Metrics, logger *slog.Logger, tracer *Tracer) *Observer {
	if m == nil {
		m = NewMetrics()
	}
	if logger == nil {
		logger = Discard
	}
	o := &Observer{Metrics: m, Logger: logger, Tracer: tracer}
	o.pool.New = func() any { return &Recorder{} }
	return o
}

// Recorder wraps the ResponseWriter to capture status and size, and
// carries the request id and principal so downstream code reaches them
// by type-asserting the writer — no context allocation. Recorders are
// pooled; handlers must not retain them past the request.
type Recorder struct {
	http.ResponseWriter
	o         *Observer
	status    int
	bytes     int64
	rid       string
	generated bool
	principal string
	req       *http.Request
	trace     *Trace
	start     time.Time
}

// WriteHeader captures the status code.
func (rec *Recorder) WriteHeader(code int) {
	if rec.status == 0 {
		rec.status = code
	}
	rec.ResponseWriter.WriteHeader(code)
}

// Write counts response bytes and defaults the status to 200.
func (rec *Recorder) Write(p []byte) (int, error) {
	if rec.status == 0 {
		rec.status = http.StatusOK
	}
	n, err := rec.ResponseWriter.Write(p)
	rec.bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer when it supports streaming.
func (rec *Recorder) Flush() {
	if f, ok := rec.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap lets http.ResponseController reach the underlying writer.
func (rec *Recorder) Unwrap() http.ResponseWriter { return rec.ResponseWriter }

// recorderOf finds the middleware's Recorder under w, walking Unwrap
// chains so layers stacked above it (the server's audit writer, a
// future compression wrapper) stay transparent. Nil when w never came
// through the middleware. The walk is assertion-only: no allocation.
func recorderOf(w http.ResponseWriter) *Recorder {
	for w != nil {
		if rec, ok := w.(*Recorder); ok {
			return rec
		}
		u, ok := w.(interface{ Unwrap() http.ResponseWriter })
		if !ok {
			return nil
		}
		w = u.Unwrap()
	}
	return nil
}

// RequestID returns the request id the middleware assigned to this
// request, or "" when w did not come through the middleware.
func RequestID(w http.ResponseWriter) string {
	if rec := recorderOf(w); rec != nil {
		return rec.rid
	}
	return ""
}

// SetPrincipal records the authenticated principal on the request's
// recorder so completion logs and traces can name it. No-op for
// writers outside the middleware.
func SetPrincipal(w http.ResponseWriter, name string) {
	if rec := recorderOf(w); rec != nil {
		rec.principal = name
	}
}

// Principal returns the principal recorded by SetPrincipal, if any.
func Principal(w http.ResponseWriter) string {
	if rec := recorderOf(w); rec != nil {
		return rec.principal
	}
	return ""
}

// Traced reports whether this request was sampled for tracing —
// handlers use it to decide whether to pay for a request clone. False
// for unsampled requests and writers outside the middleware.
func Traced(w http.ResponseWriter) bool {
	rec := recorderOf(w)
	return rec != nil && rec.trace != nil
}

// validRequestID accepts client-supplied ids that are safe to echo into
// logs and headers: 1–64 bytes of [0-9A-Za-z._-]. Anything else is
// replaced, which doubles as log-injection defense.
func validRequestID(s string) bool {
	if len(s) == 0 || len(s) > 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

const hexDigits = "0123456789abcdef"

// newRequestID returns a 32-hex-char random id. math/rand/v2's global
// generator is seeded and lock-free; ids need uniqueness for
// correlation, not unpredictability.
func newRequestID() string {
	var buf [32]byte
	hi, lo := rand.Uint64(), rand.Uint64()
	for i := 0; i < 16; i++ {
		buf[i] = hexDigits[(hi>>(60-4*i))&0xf]
		buf[16+i] = hexDigits[(lo>>(60-4*i))&0xf]
	}
	return string(buf[:])
}

// Middleware returns the observability layer: request-id handling,
// latency/size/in-flight accounting keyed by the mux's matched route
// pattern, sampled tracing, slow-request logging, and panic recovery.
//
// Allocation budget on the warm path: an unsampled request with a
// client-supplied X-Request-Id adds zero heap allocations; with a
// generated id it adds two (the id string and its response-header
// slot). Sampling adds the trace, one context value, and a shallow
// request clone — paid only by the 1-in-N sampled requests.
func (o *Observer) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := o.pool.Get().(*Recorder)
		rec.ResponseWriter = w
		rec.o = o
		rec.status = 0
		rec.bytes = 0
		rec.principal = ""
		rec.trace = nil
		rec.generated = false
		rec.start = time.Now()

		rec.rid = r.Header.Get("X-Request-Id")
		if !validRequestID(rec.rid) {
			rec.rid = newRequestID()
			rec.generated = true
			// Echo only ids we minted: the client already knows its own
			// id, and skipping the echo keeps the client-supplied path
			// allocation-free.
			w.Header().Set("X-Request-Id", rec.rid)
		}

		if o.Tracer != nil && o.Tracer.sample() {
			ctx, t := o.Tracer.startTrace(r.Context(), rec.rid, r.URL.Path)
			rec.trace = t
			r = r.WithContext(ctx)
		}
		rec.req = r

		o.Metrics.inflight.Add(1)
		defer rec.finish()
		next.ServeHTTP(rec, r)
	})
}

// finish is the deferred completion path: panic recovery, metrics,
// slow-request logging, and trace commit. It is a named method (not a
// closure) so the defer in Middleware stays open-coded and
// allocation-free.
func (rec *Recorder) finish() {
	o := rec.o
	o.Metrics.inflight.Add(-1)

	if p := recover(); p != nil {
		if p == http.ErrAbortHandler {
			rec.reset()
			panic(http.ErrAbortHandler)
		}
		o.Metrics.panics.Add(1)
		o.Logger.Error("handler panic",
			"request_id", rec.rid,
			"method", rec.req.Method,
			"path", rec.req.URL.Path,
			"panic", fmt.Sprint(p),
			"stack", string(debug.Stack()))
		if rec.status == 0 {
			rec.Header().Set("Content-Type", "application/json")
			rec.WriteHeader(http.StatusInternalServerError)
			json.NewEncoder(rec).Encode(map[string]string{
				"error":      "internal server error",
				"request_id": rec.rid,
			})
		}
	}

	dur := time.Since(rec.start)
	status := rec.status
	if status == 0 {
		status = http.StatusOK
	}
	// Go 1.22+ mux sets Pattern in place on the request it matched, so
	// after ServeHTTP the matched route is readable here; unmatched
	// requests (404 from the mux) group under one bucket.
	route := rec.req.Pattern
	if route == "" {
		route = "unmatched"
	}
	o.Metrics.observe(route, status, dur, rec.bytes)

	slowNs := int64(0)
	if o.Tracer != nil {
		slowNs = o.Tracer.slowNanos.Load()
	}
	if slowNs > 0 && int64(dur) >= slowNs {
		o.Metrics.slow.Add(1)
		o.Logger.Warn("slow request",
			"request_id", rec.rid,
			"method", rec.req.Method,
			"route", route,
			"principal", rec.principal,
			"status", status,
			"duration", dur,
			"bytes", rec.bytes)
	}
	if rec.trace != nil {
		o.Tracer.finish(rec.trace, rec.req.Method+" "+rec.req.URL.Path, status, dur)
	}

	rec.reset()
}

// reset clears references and returns the recorder to the pool.
func (rec *Recorder) reset() {
	o := rec.o
	rec.ResponseWriter = nil
	rec.req = nil
	rec.trace = nil
	rec.o = nil
	rec.rid = ""
	rec.principal = ""
	o.pool.Put(rec)
}
