package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ValidateExposition checks a Prometheus text-exposition page for the
// structural invariants new metrics most easily break:
//
//   - every series belongs to a family that declared exactly one HELP
//     and one TYPE line, before its first sample;
//   - metric names match [a-z_][a-z0-9_]* (we don't emit colons);
//   - histogram families expose only _bucket/_sum/_count series, with
//     per-labelset buckets cumulative, le ascending, ending in +Inf,
//     and _count equal to the +Inf bucket;
//   - every sample value parses as a float.
//
// It accepts any page this package or the server's /metrics emits and
// is reused by the e2e smoke test against a live server.
func ValidateExposition(data []byte) error {
	type family struct {
		help, typ bool
		kind      string
	}
	families := make(map[string]*family)
	type bucketKey struct{ base, labels string }
	type bucketPoint struct {
		le  float64
		val float64
	}
	buckets := make(map[bucketKey][]bucketPoint)
	sums := make(map[bucketKey]bool)
	counts := make(map[bucketKey]float64)

	lineNo := 0
	for _, line := range strings.Split(string(data), "\n") {
		lineNo++
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			name := fields[2]
			if !validMetricName(name) {
				return fmt.Errorf("line %d: bad metric name %q", lineNo, name)
			}
			f := families[name]
			if f == nil {
				f = &family{}
				families[name] = f
			}
			switch fields[1] {
			case "HELP":
				if f.help {
					return fmt.Errorf("line %d: duplicate HELP for %s", lineNo, name)
				}
				f.help = true
			case "TYPE":
				if f.typ {
					return fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
				}
				if len(fields) < 4 {
					return fmt.Errorf("line %d: TYPE for %s missing kind", lineNo, name)
				}
				f.typ = true
				f.kind = fields[3]
			}
			continue
		}

		name, labels, valStr, err := splitSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		if !validMetricName(name) {
			return fmt.Errorf("line %d: bad metric name %q", lineNo, name)
		}
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return fmt.Errorf("line %d: bad value %q for %s", lineNo, valStr, name)
		}

		// Resolve the declaring family: exact name, or for histogram
		// sub-series the base name.
		fam := families[name]
		base := name
		if fam == nil {
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				if b, ok := strings.CutSuffix(name, suffix); ok {
					if f := families[b]; f != nil && f.kind == "histogram" {
						fam, base = f, b
						break
					}
				}
			}
		}
		if fam == nil || !fam.help || !fam.typ {
			return fmt.Errorf("line %d: series %s has no preceding HELP/TYPE family", lineNo, name)
		}
		if fam.kind == "histogram" {
			if base == name {
				return fmt.Errorf("line %d: histogram %s exposes bare series", lineNo, name)
			}
			le, rest, hasLE := extractLE(labels)
			key := bucketKey{base, rest}
			switch {
			case strings.HasSuffix(name, "_bucket"):
				if !hasLE {
					return fmt.Errorf("line %d: %s bucket missing le label", lineNo, base)
				}
				leVal := math.Inf(1)
				if le != "+Inf" {
					leVal, err = strconv.ParseFloat(le, 64)
					if err != nil {
						return fmt.Errorf("line %d: bad le %q", lineNo, le)
					}
				}
				buckets[key] = append(buckets[key], bucketPoint{leVal, val})
			case strings.HasSuffix(name, "_sum"):
				sums[key] = true
			case strings.HasSuffix(name, "_count"):
				counts[key] = val
			}
		}
	}

	// Cross-line histogram invariants.
	keys := make([]bucketKey, 0, len(buckets))
	for k := range buckets {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].base != keys[j].base {
			return keys[i].base < keys[j].base
		}
		return keys[i].labels < keys[j].labels
	})
	for _, k := range keys {
		pts := buckets[k]
		for i := 1; i < len(pts); i++ {
			if pts[i].le <= pts[i-1].le {
				return fmt.Errorf("histogram %s{%s}: le not ascending", k.base, k.labels)
			}
			if pts[i].val < pts[i-1].val {
				return fmt.Errorf("histogram %s{%s}: buckets not cumulative", k.base, k.labels)
			}
		}
		last := pts[len(pts)-1]
		if !math.IsInf(last.le, 1) {
			return fmt.Errorf("histogram %s{%s}: buckets do not end in +Inf", k.base, k.labels)
		}
		if !sums[k] {
			return fmt.Errorf("histogram %s{%s}: missing _sum", k.base, k.labels)
		}
		cnt, ok := counts[k]
		if !ok {
			return fmt.Errorf("histogram %s{%s}: missing _count", k.base, k.labels)
		}
		if cnt != last.val {
			return fmt.Errorf("histogram %s{%s}: _count %v != +Inf bucket %v", k.base, k.labels, cnt, last.val)
		}
	}
	return nil
}

// ExpositionSeries parses a page into series-line → value, keyed by the
// full "name{labels}" string, so tests can diff two scrapes and assert
// _total monotonicity.
func ExpositionSeries(data []byte) (map[string]float64, error) {
	out := make(map[string]float64)
	for _, line := range strings.Split(string(data), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, labels, valStr, err := splitSample(line)
		if err != nil {
			return nil, err
		}
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value in %q", line)
		}
		key := name
		if labels != "" {
			// The exposition parser's series identity is the canonical
			// Prometheus textual form; quoting would fork the format.
			//provlint:ignore cachekey series identity is name{labels} verbatim, values come from our own exposition not the wire
			key = name + "{" + labels + "}"
		}
		out[key] = val
	}
	return out, nil
}

// validMetricName reports whether name matches [a-z_][a-z0-9_]*.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c == '_', c >= 'a' && c <= 'z':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// splitSample parses `name{labels} value` or `name value`, tolerating
// quoted label values containing spaces and escaped quotes.
func splitSample(line string) (name, labels, value string, err error) {
	if i := strings.IndexByte(line, '{'); i >= 0 {
		name = line[:i]
		rest := line[i+1:]
		// Scan for the closing brace outside quotes.
		inQ := false
		end := -1
		for j := 0; j < len(rest); j++ {
			switch rest[j] {
			case '\\':
				if inQ {
					j++
				}
			case '"':
				inQ = !inQ
			case '}':
				if !inQ {
					end = j
				}
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return "", "", "", fmt.Errorf("unterminated labels in %q", line)
		}
		labels = rest[:end]
		value = strings.TrimSpace(rest[end+1:])
	} else {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return "", "", "", fmt.Errorf("malformed sample %q", line)
		}
		name, value = fields[0], fields[1]
	}
	if value == "" {
		return "", "", "", fmt.Errorf("missing value in %q", line)
	}
	return name, labels, value, nil
}

// extractLE pulls the le label out of a rendered label string,
// returning the remaining labels (normalized, order preserved) as the
// grouping key.
func extractLE(labels string) (le, rest string, ok bool) {
	parts := splitLabels(labels)
	kept := make([]string, 0, len(parts))
	for _, p := range parts {
		if v, found := strings.CutPrefix(p, "le="); found {
			le = strings.Trim(v, `"`)
			ok = true
			continue
		}
		kept = append(kept, p)
	}
	return le, strings.Join(kept, ","), ok
}

// splitLabels splits `k1="v1",k2="v2"` on commas outside quotes.
func splitLabels(labels string) []string {
	if labels == "" {
		return nil
	}
	var parts []string
	inQ := false
	start := 0
	for i := 0; i < len(labels); i++ {
		switch labels[i] {
		case '\\':
			if inQ {
				i++
			}
		case '"':
			inQ = !inQ
		case ',':
			if !inQ {
				parts = append(parts, labels[start:i])
				start = i + 1
			}
		}
	}
	parts = append(parts, labels[start:])
	return parts
}
