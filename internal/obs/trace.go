package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Trace collects the spans of one sampled request (or one traced
// background task). Spans append under a plain mutex — a sampled
// request records a handful of spans, so contention is negligible, and
// unsampled requests never construct a Trace at all.
type Trace struct {
	ID    string
	Name  string
	Start time.Time

	mu      sync.Mutex
	spans   []spanRec
	dropped int

	// Set by Finish, read by Recent — the trace is out of the ring's
	// reach only after Finish, so no lock is needed for these.
	Dur    time.Duration
	Slow   bool
	Status int
}

// spanRec is one completed-or-open span inside a trace.
type spanRec struct {
	name   string
	parent int32 // index into spans, -1 for roots
	start  time.Time
	dur    time.Duration // 0 while open
	done   bool
}

// maxSpans caps the per-trace span count so a pathological fan-out
// (thousands of shards) can't balloon a single trace; overflow is
// counted and reported in the view.
const maxSpans = 128

type traceCtxKey struct{}
type spanCtxKey struct{}

// Span is a handle to one started span. The zero Span is inert: End is
// a no-op and Active reports false, so instrumented code never branches
// on whether tracing is on.
type Span struct {
	t   *Trace
	idx int32
}

// Active reports whether this span is actually recording.
func (s Span) Active() bool { return s.t != nil }

// End completes the span, stamping its duration.
func (s Span) End() {
	if s.t == nil {
		return
	}
	s.t.mu.Lock()
	r := &s.t.spans[s.idx]
	if !r.done {
		r.done = true
		r.dur = time.Since(r.start)
	}
	s.t.mu.Unlock()
}

// StartSpan opens a span under the sampled trace carried by ctx. When
// ctx has no trace this is a no-op returning (ctx, Span{}) — zero
// allocation — so call sites thread it unconditionally. The returned
// context carries the new span as parent for nested StartSpan calls and
// is safe to hand to fan-out goroutines: span starts serialize on the
// trace's mutex.
func StartSpan(ctx context.Context, name string) (context.Context, Span) {
	t, _ := ctx.Value(traceCtxKey{}).(*Trace)
	if t == nil {
		return ctx, Span{}
	}
	parent := int32(-1)
	if p, ok := ctx.Value(spanCtxKey{}).(int32); ok {
		parent = p
	}
	t.mu.Lock()
	if len(t.spans) >= maxSpans {
		t.dropped++
		t.mu.Unlock()
		return ctx, Span{}
	}
	idx := int32(len(t.spans))
	t.spans = append(t.spans, spanRec{name: name, parent: parent, start: time.Now()})
	t.mu.Unlock()
	return context.WithValue(ctx, spanCtxKey{}, idx), Span{t: t, idx: idx}
}

// Tracer samples requests into Traces and keeps the most recent
// completed ones in a fixed ring.
type Tracer struct {
	sampleEvery atomic.Int64 // 0 = off, 1 = every request, N = 1 in N
	slowNanos   atomic.Int64
	counter     atomic.Int64
	sampled     atomic.Int64
	slowCount   atomic.Int64

	mu   sync.Mutex
	ring []*Trace
	next int
}

// NewTracer builds a tracer holding the last ringSize completed traces,
// sampling one request in sampleEvery (0 disables sampling entirely),
// and flagging requests slower than slowThreshold.
func NewTracer(ringSize, sampleEvery int, slowThreshold time.Duration) *Tracer {
	if ringSize <= 0 {
		ringSize = 64
	}
	t := &Tracer{ring: make([]*Trace, 0, ringSize)}
	t.sampleEvery.Store(int64(sampleEvery))
	t.slowNanos.Store(int64(slowThreshold))
	return t
}

// SlowThreshold returns the configured slow-request threshold.
func (tr *Tracer) SlowThreshold() time.Duration {
	return time.Duration(tr.slowNanos.Load())
}

// sample decides, with one atomic increment, whether this request is
// traced.
func (tr *Tracer) sample() bool {
	n := tr.sampleEvery.Load()
	if n <= 0 {
		return false
	}
	return tr.counter.Add(1)%n == 0
}

// StartRequest begins a trace for a sampled request and returns a ctx
// carrying it. Callers must only use it after sample() said yes (the
// middleware fuses the two; StartRoot is the standalone form).
func (tr *Tracer) startTrace(ctx context.Context, id, name string) (context.Context, *Trace) {
	t := &Trace{ID: id, Name: name, Start: time.Now()}
	tr.sampled.Add(1)
	return context.WithValue(ctx, traceCtxKey{}, t), t
}

// Finish completes a trace and commits it to the ring.
func (tr *Tracer) finish(t *Trace, name string, status int, dur time.Duration) {
	t.Name = name
	t.Status = status
	t.Dur = dur
	t.Slow = int64(dur) >= tr.slowNanos.Load()
	if t.Slow {
		tr.slowCount.Add(1)
	}
	tr.mu.Lock()
	if len(tr.ring) < cap(tr.ring) {
		tr.ring = append(tr.ring, t)
	} else {
		tr.ring[tr.next] = t
		tr.next = (tr.next + 1) % cap(tr.ring)
	}
	tr.mu.Unlock()
}

// StartRoot opens a sampled root trace around a non-HTTP unit of work
// (a background task attempt). The returned finish func commits the
// trace; when the sampler says no it returns (ctx, no-op). The
// signature matches the task runtime's trace hook so the packages stay
// decoupled.
func (tr *Tracer) StartRoot(ctx context.Context, name string) (context.Context, func()) {
	if !tr.sample() {
		return ctx, func() {}
	}
	ctx, t := tr.startTrace(ctx, "", name)
	ctx, sp := StartSpan(ctx, name)
	start := time.Now()
	return ctx, func() {
		sp.End()
		tr.finish(t, name, 0, time.Since(start))
	}
}

// SpanView is one span rendered for the debug endpoint, children
// nested.
type SpanView struct {
	Name     string     `json:"name"`
	StartNs  int64      `json:"start_ns"` // offset from trace start
	DurNs    int64      `json:"duration_ns"`
	Children []SpanView `json:"children,omitempty"`
}

// TraceView is one completed trace rendered for the debug endpoint.
type TraceView struct {
	ID      string     `json:"request_id,omitempty"`
	Name    string     `json:"name"`
	Status  int        `json:"status,omitempty"`
	Start   time.Time  `json:"start"`
	DurNs   int64      `json:"duration_ns"`
	Slow    bool       `json:"slow"`
	Dropped int        `json:"dropped_spans,omitempty"`
	Spans   []SpanView `json:"spans"`
}

// Recent returns the completed traces in the ring, newest first, as
// nested span trees.
func (tr *Tracer) Recent() []TraceView {
	tr.mu.Lock()
	traces := make([]*Trace, 0, len(tr.ring))
	for i := 0; i < len(tr.ring); i++ {
		// Walk backwards from the slot most recently written.
		idx := (tr.next - 1 - i + len(tr.ring)) % len(tr.ring)
		if len(tr.ring) < cap(tr.ring) {
			// Ring not yet full: entries 0..len-1 in insertion order.
			idx = len(tr.ring) - 1 - i
		}
		traces = append(traces, tr.ring[idx])
	}
	tr.mu.Unlock()

	out := make([]TraceView, 0, len(traces))
	for _, t := range traces {
		out = append(out, t.view())
	}
	return out
}

// view renders the trace's flat span list as a tree.
func (t *Trace) view() TraceView {
	t.mu.Lock()
	spans := make([]spanRec, len(t.spans))
	copy(spans, t.spans)
	dropped := t.dropped
	t.mu.Unlock()

	v := TraceView{
		ID:      t.ID,
		Name:    t.Name,
		Status:  t.Status,
		Start:   t.Start,
		DurNs:   int64(t.Dur),
		Slow:    t.Slow,
		Dropped: dropped,
	}
	// Build children index lists, then emit depth-first. Spans are
	// appended in start order, so a parent always precedes its children.
	kids := make([][]int32, len(spans))
	var roots []int32
	for i, s := range spans {
		if s.parent < 0 {
			roots = append(roots, int32(i))
		} else {
			kids[s.parent] = append(kids[s.parent], int32(i))
		}
	}
	var build func(i int32) SpanView
	build = func(i int32) SpanView {
		s := spans[i]
		sv := SpanView{
			Name:    s.name,
			StartNs: s.start.Sub(t.Start).Nanoseconds(),
			DurNs:   int64(s.dur),
		}
		for _, c := range kids[i] {
			sv.Children = append(sv.Children, build(c))
		}
		return sv
	}
	v.Spans = make([]SpanView, 0, len(roots))
	for _, r := range roots {
		v.Spans = append(v.Spans, build(r))
	}
	return v
}
