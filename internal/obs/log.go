package obs

import (
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
)

// NewLogger builds the process logger: format is "text" or "json",
// level one of "debug", "info", "warn", "error". The zero values
// ("", "") mean text at info — the human default; "json" is the
// aggregator default.
func NewLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "", "info":
		lvl = slog.LevelInfo
	case "debug":
		lvl = slog.LevelDebug
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("obs: bad log level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("obs: bad log format %q (want text or json)", format)
}

// Discard is a logger that drops everything — the nil-safe fallback so
// serving code never needs a nil guard before logging.
var Discard = slog.New(slog.DiscardHandler)

// RequestLogger scopes base to one request: method, path, and — when
// the request came through the Observer middleware — its request id and
// authenticated principal. Built lazily on the paths that actually log
// (failures, slow requests), never on the hot path.
func RequestLogger(base *slog.Logger, w http.ResponseWriter, r *http.Request) *slog.Logger {
	if base == nil {
		base = Discard
	}
	l := base.With("method", r.Method, "path", r.URL.Path)
	if rid := RequestID(w); rid != "" {
		l = l.With("request_id", rid)
	}
	if p := Principal(w); p != "" {
		l = l.With("principal", p)
	}
	return l
}
