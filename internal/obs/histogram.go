package obs

import (
	"sync/atomic"
	"time"
)

// durationBounds are the fixed histogram bucket upper bounds, in
// seconds, shared by every latency histogram: fine resolution where an
// in-memory engine lives (sub-millisecond) and coverage out to the
// multi-second tail a cold fan-out or compaction pass can reach. The
// final implicit bucket is +Inf.
var durationBounds = [...]float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// numBuckets counts the explicit bounds plus the +Inf overflow bucket.
const numBuckets = len(durationBounds) + 1

// boundNanos mirrors durationBounds in integer nanoseconds so Observe
// compares without floating-point conversion.
var boundNanos = func() [len(durationBounds)]int64 {
	var b [len(durationBounds)]int64
	for i, s := range durationBounds {
		b[i] = int64(s * 1e9)
	}
	return b
}()

// Histogram is a fixed-bucket duration histogram safe for concurrent
// observation: per-bucket atomic counters plus an atomic nanosecond
// sum. Observing allocates nothing; cumulative bucket values are
// computed at render time, so they are monotone and internally
// consistent by construction.
type Histogram struct {
	counts   [numBuckets]atomic.Int64 //provlint:counter
	sumNanos atomic.Int64             //provlint:counter
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	n := int64(d)
	if n < 0 {
		n = 0
	}
	i := 0
	for i < len(boundNanos) && n > boundNanos[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumNanos.Add(n)
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var total int64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	return total
}

// snapshot reads the bucket counts once and returns the cumulative
// counts (ending in the +Inf total), the total count, and the sum in
// seconds. The count equals the +Inf cumulative value by construction,
// so a scrape racing observers still renders a self-consistent series.
func (h *Histogram) snapshot() (cum [numBuckets]int64, count int64, sumSeconds float64) {
	var running int64
	for i := range h.counts {
		running += h.counts[i].Load()
		cum[i] = running
	}
	return cum, running, float64(h.sumNanos.Load()) / 1e9
}
