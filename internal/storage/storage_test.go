package storage_test

import (
	"errors"
	"path/filepath"
	"testing"

	"provpriv/internal/storage"
	"provpriv/internal/storage/storagetest"
)

func TestFlatConformance(t *testing.T) {
	storagetest.Conformance(t, func(dir string) (storage.Backend, error) {
		return storage.OpenFlat(dir)
	})
}

func TestKVConformance(t *testing.T) {
	storagetest.Conformance(t, func(dir string) (storage.Backend, error) {
		return storage.OpenKV(dir)
	})
}

func TestMeasuredFlatConformance(t *testing.T) {
	// The metrics wrapper must be behaviorally transparent.
	storagetest.Conformance(t, func(dir string) (storage.Backend, error) {
		b, err := storage.OpenFlat(dir)
		if err != nil {
			return nil, err
		}
		return storage.NewMeasure(b), nil
	})
}

func TestFaultWrapperUnarmedConformance(t *testing.T) {
	// A Fault with no kill points armed must also be transparent.
	storagetest.Conformance(t, func(dir string) (storage.Backend, error) {
		b, err := storage.OpenKV(dir)
		if err != nil {
			return nil, err
		}
		return storage.NewFault(b), nil
	})
}

func TestMeasureCounts(t *testing.T) {
	b, err := storage.OpenFlat(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := storage.NewMeasure(b)
	defer m.Close()
	recs := []storage.Record{{Type: storage.RecSpec, Key: "s", Data: []byte("x")}}
	if err := m.WriteCheckpoint("s", 1, recs); err != nil {
		t.Fatal(err)
	}
	ln, err := m.Append("s", 1, 0, recs)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(storage.Meta{Generation: 1, Shards: map[string]storage.ShardInfo{
		"s": {Checkpoint: 1, Records: 1, LogLen: ln},
	}}); err != nil {
		t.Fatal(err)
	}
	if err := m.ReplayLog("s", 1, ln, func(storage.Record) error { return nil }); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Checkpoints != 1 || st.CheckpointRecords != 1 {
		t.Errorf("checkpoints = %d/%d records, want 1/1", st.Checkpoints, st.CheckpointRecords)
	}
	if st.Appends != 1 || st.AppendRecords != 1 {
		t.Errorf("appends = %d/%d records, want 1/1", st.Appends, st.AppendRecords)
	}
	if st.Commits != 1 {
		t.Errorf("commits = %d, want 1", st.Commits)
	}
	if st.Replays != 1 || st.ReplayRecords != 1 {
		t.Errorf("replays = %d/%d records, want 1/1", st.Replays, st.ReplayRecords)
	}
	if st.Errors != 0 {
		t.Errorf("errors = %d, want 0", st.Errors)
	}
	// A failing read counts as an error.
	if err := m.ReadCheckpoint("missing", 9, 1, func(storage.Record) error { return nil }); err == nil {
		t.Fatal("expected read of missing checkpoint to fail")
	}
	if got := m.Stats().Errors; got != 1 {
		t.Errorf("errors after failed read = %d, want 1", got)
	}
}

func TestFaultKillBefore(t *testing.T) {
	b, err := storage.OpenFlat(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	f := storage.NewFault(b)
	defer f.Close()
	f.KillBefore(storage.OpCommit, 1)
	recs := []storage.Record{{Type: storage.RecSpec, Key: "s", Data: []byte("x")}}
	if err := f.WriteCheckpoint("s", 1, recs); err != nil {
		t.Fatal(err)
	}
	err = f.Commit(storage.Meta{Generation: 1, Shards: map[string]storage.ShardInfo{
		"s": {Checkpoint: 1, Records: 1},
	}})
	if !errors.Is(err, storage.ErrKilled) {
		t.Fatalf("commit err = %v, want ErrKilled", err)
	}
	if !f.Dead() {
		t.Fatal("fault not dead after kill")
	}
	// Dead stays dead.
	if err := f.WriteCheckpoint("s", 2, recs); !errors.Is(err, storage.ErrKilled) {
		t.Fatalf("post-death write err = %v, want ErrKilled", err)
	}
	// The kill fired before the operation: nothing was committed.
	m, err := f.Unwrap().Meta()
	if err != nil {
		t.Fatal(err)
	}
	if m.Generation != 0 {
		t.Fatalf("commit ran despite KillBefore: %+v", m)
	}
}

func TestFaultKillAfter(t *testing.T) {
	b, err := storage.OpenFlat(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	f := storage.NewFault(b)
	defer f.Close()
	f.KillAfter(storage.OpCommit, 1)
	recs := []storage.Record{{Type: storage.RecSpec, Key: "s", Data: []byte("x")}}
	if err := f.WriteCheckpoint("s", 1, recs); err != nil {
		t.Fatal(err)
	}
	err = f.Commit(storage.Meta{Generation: 1, Shards: map[string]storage.ShardInfo{
		"s": {Checkpoint: 1, Records: 1},
	}})
	if !errors.Is(err, storage.ErrKilled) {
		t.Fatalf("commit err = %v, want ErrKilled", err)
	}
	// KillAfter: the commit landed even though the caller saw a crash.
	m, err := f.Unwrap().Meta()
	if err != nil {
		t.Fatal(err)
	}
	if m.Generation != 1 {
		t.Fatalf("commit lost despite KillAfter: %+v", m)
	}
	if f.Calls(storage.OpCommit) != 1 || f.Calls(storage.OpWriteCheckpoint) != 1 {
		t.Fatalf("call counts: commit=%d checkpoint=%d",
			f.Calls(storage.OpCommit), f.Calls(storage.OpWriteCheckpoint))
	}
}

func TestFileBaseDistinct(t *testing.T) {
	// Ids that sanitize to the same prefix must still map to distinct
	// bases, and the base must be filesystem-safe.
	a, b := storage.FileBase("wf/one"), storage.FileBase("wf:one")
	if a == b {
		t.Fatalf("distinct ids collided: %q", a)
	}
	for _, s := range []string{a, b} {
		if s != filepath.Base(s) {
			t.Fatalf("base %q is not a plain file name", s)
		}
	}
	if storage.FileBase("x") != storage.FileBase("x") {
		t.Fatal("FileBase not deterministic")
	}
}
