package storage

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
)

// KVBackend maps the Backend contract onto the embedded KV store: a
// structurally different organization from the flat backend (one
// log-structured data file holding every shard, instead of files per
// shard). Keys:
//
//	m                                  committed manifest (JSON)
//	c/<base>/<gen %016x>/<seq %016x>   checkpoint record payloads
//	l/<base>/<gen %016x>/<seq %016x>   log record payloads
//
// <base> is FileBase(shard id); fixed-width hex keeps the KV's sorted
// iteration in write order. The manifest put is a single CRC-framed KV
// entry — atomic at the entry level — so Commit retains the
// swapped-last property: a torn manifest write is truncated on the
// next open, leaving the previous manifest value live. LogLen counts
// records (not bytes): orphan log entries past the committed count are
// ignored on replay and overwritten (same key) by the next Append.
type KVBackend struct {
	kv *KV

	mu sync.Mutex
	// prev mirrors Flat.prev: the last read-or-committed manifest,
	// whose keys pruning spares for concurrent readers.
	prev     Meta
	havePrev bool
}

// KVFileName is the data file of a KV-backed repository directory;
// repo.Load sniffs it to pick the backend.
const KVFileName = "store.kv"

const kvMetaKey = "m"

// OpenKV opens (creating if missing) a KV-backed store in dir.
func OpenKV(dir string) (*KVBackend, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: open kv store %s: %w", dir, err)
	}
	kv, err := OpenKVFile(filepath.Join(dir, KVFileName))
	if err != nil {
		return nil, err
	}
	return &KVBackend{kv: kv}, nil
}

func kvRecKey(kind, shard string, gen, seq uint64) string {
	return fmt.Sprintf("%s/%s/%016x/%016x", kind, FileBase(shard), gen, seq)
}

func kvGenPrefix(kind, shard string, gen uint64) string {
	return fmt.Sprintf("%s/%s/%016x/", kind, FileBase(shard), gen)
}

// Meta implements Backend.
func (b *KVBackend) Meta() (Meta, error) {
	data, ok, err := b.kv.Get(kvMetaKey)
	if err != nil {
		return Meta{}, err
	}
	if !ok {
		return Meta{}, nil
	}
	var m Meta
	if err := json.Unmarshal(data, &m); err != nil {
		return Meta{}, fmt.Errorf("storage: parse kv manifest: %w", err)
	}
	b.mu.Lock()
	b.prev, b.havePrev = m, true
	b.mu.Unlock()
	return m, nil
}

// WriteCheckpoint implements Backend. Any leftovers from a crashed
// write at the same generation are deleted in the same batch, so the
// checkpoint's key range holds exactly recs afterwards.
func (b *KVBackend) WriteCheckpoint(shard string, gen uint64, recs []Record) error {
	prefix := kvGenPrefix("c", shard, gen)
	ops := make([]KVOp, 0, len(recs))
	for _, k := range b.kv.Keys(prefix) {
		ops = append(ops, KVOp{Del: true, Key: k})
	}
	for i, rec := range recs {
		ops = append(ops, KVOp{Key: kvRecKey("c", shard, gen, uint64(i)), Val: encodePayload(rec)})
	}
	return b.kv.Apply(ops)
}

// ReadCheckpoint implements Backend.
func (b *KVBackend) ReadCheckpoint(shard string, gen uint64, want uint64, fn func(Record) error) error {
	var n uint64
	err := b.kv.Iter(kvGenPrefix("c", shard, gen), func(_ string, val []byte) error {
		rec, err := decodePayload(val)
		if err != nil {
			return err
		}
		n++
		return fn(rec)
	})
	if err != nil {
		return err
	}
	if n != want {
		return fmt.Errorf("%w: kv checkpoint %s/%d holds %d records, manifest says %d",
			ErrCorrupt, shard, gen, n, want)
	}
	return nil
}

// Append implements Backend. at is a record index; orphan entries from
// a crashed save share keys with the new records and are overwritten
// (KV last-write-wins), which is exactly the flat backend's
// truncate-then-append semantics.
func (b *KVBackend) Append(shard string, gen, at uint64, recs []Record) (uint64, error) {
	ops := make([]KVOp, len(recs))
	for i, rec := range recs {
		ops[i] = KVOp{Key: kvRecKey("l", shard, gen, at+uint64(i)), Val: encodePayload(rec)}
	}
	if err := b.kv.Apply(ops); err != nil {
		return 0, err
	}
	return at + uint64(len(recs)), nil
}

// ReplayLog implements Backend.
func (b *KVBackend) ReplayLog(shard string, gen, upTo uint64, fn func(Record) error) error {
	if upTo == 0 {
		return nil
	}
	var n uint64
	prefix := kvGenPrefix("l", shard, gen)
	err := b.kv.Iter(prefix, func(key string, val []byte) error {
		seq, perr := strconv.ParseUint(strings.TrimPrefix(key, prefix), 16, 64)
		if perr != nil {
			return fmt.Errorf("%w: kv log key %q", ErrCorrupt, key)
		}
		if seq >= upTo {
			return nil // uncommitted orphan tail
		}
		rec, perr := decodePayload(val)
		if perr != nil {
			return perr
		}
		n++
		return fn(rec)
	})
	if err != nil {
		return err
	}
	if n != upTo {
		return fmt.Errorf("%w: kv log %s/%d holds %d committed records, manifest says %d",
			ErrCorrupt, shard, gen, n, upTo)
	}
	return nil
}

// Commit implements Backend: one atomic manifest put, then pruning of
// generations unreachable from both the new and the previous manifest.
func (b *KVBackend) Commit(meta Meta) error {
	data, err := json.Marshal(meta)
	if err != nil {
		return fmt.Errorf("storage: encode kv manifest: %w", err)
	}
	if err := b.kv.Apply([]KVOp{{Key: kvMetaKey, Val: data}}); err != nil {
		return err
	}
	b.mu.Lock()
	prev := b.prev
	if !b.havePrev {
		prev = meta
	}
	b.mu.Unlock()
	b.prune(meta, prev)
	b.mu.Lock()
	b.prev, b.havePrev = meta, true
	b.mu.Unlock()
	return nil
}

// prune deletes record keys whose (shard, generation) is referenced by
// neither the current nor the previous manifest.
func (b *KVBackend) prune(cur, prev Meta) {
	keep := make(map[string]bool)
	for _, m := range []Meta{cur, prev} {
		for sid, info := range m.Shards {
			keep[kvGenPrefix("c", sid, info.Checkpoint)] = true
			keep[kvGenPrefix("l", sid, info.Checkpoint)] = true
		}
	}
	var ops []KVOp
	for _, key := range b.kv.Keys("") {
		if key == kvMetaKey {
			continue
		}
		// key = kind/base/gen/seq → prefix is everything before the seq.
		i := strings.LastIndexByte(key, '/')
		if i < 0 || !keep[key[:i+1]] {
			ops = append(ops, KVOp{Del: true, Key: key})
		}
	}
	// Prune failures only delay garbage collection; ignore them.
	if len(ops) > 0 {
		_ = b.kv.Apply(ops)
	}
}

// DropShard implements Backend.
func (b *KVBackend) DropShard(shard string) error {
	base := FileBase(shard)
	var ops []KVOp
	for _, kind := range []string{"c", "l"} {
		for _, key := range b.kv.Keys(kind + "/" + base + "/") {
			ops = append(ops, KVOp{Del: true, Key: key})
		}
	}
	return b.kv.Apply(ops)
}

// Close implements Backend.
func (b *KVBackend) Close() error { return b.kv.Close() }
