package storage

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// KV is a minimal embedded key-value store in the bitcask style: one
// append-only data file, an in-memory key directory pointing at value
// locations, CRC-framed entries, torn-tail exclusion on open, and
// stop-the-world compaction that rewrites live entries into a fresh
// file swapped in by atomic rename. It exists so the repository can
// offer a second, structurally different storage backend without any
// external dependency; it is deliberately small, not a general store.
//
// Entry frame: | u32 len | u32 CRC32(rest) | u8 op | u32 key len | key
// | value |. op 0 is a put, op 1 a delete tombstone. The last write
// for a key wins; Apply batches land in one write call followed by one
// fsync, so a batch is durable as a unit (a torn batch is ignored past
// the clean frame prefix on the next open — individual entries are
// atomic, batches are not, which the Backend layer's committed-extent
// manifest makes safe).
type KV struct {
	mu   sync.Mutex
	path string
	f    *os.File
	idx  map[string]kvLoc
	size int64 // file extent (end of the clean frame region)
	dead int64 // bytes held by superseded or deleted frames
}

// kvLoc locates one live value inside the data file.
type kvLoc struct {
	off  int64 // offset of the value bytes
	size uint32
}

const (
	kvOpPut = 0
	kvOpDel = 1
	// kvCompactMinSize / kvCompactRatio gate automatic compaction: once
	// dead bytes exceed half the file (and the file is non-trivial),
	// Apply folds the store.
	kvCompactMinSize = 64 << 10
)

// KVOp is one batched mutation.
type KVOp struct {
	Del bool
	Key string
	Val []byte
}

// OpenKVFile opens (creating if missing) a KV data file, replaying it
// to rebuild the key directory; any torn tail is left on disk but
// excluded from the extent.
func OpenKVFile(path string) (*KV, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open kv %s: %w", path, err)
	}
	kv := &KV{path: path, f: f, idx: make(map[string]kvLoc)}
	if err := kv.replay(); err != nil {
		f.Close()
		return nil, err
	}
	return kv, nil
}

// replay scans the data file, building the index from its longest
// clean frame prefix. A torn tail (crashed write) is not truncated —
// opening must be read-only safe, because Load may open a store a live
// writer still appends to — it is simply excluded from the extent, so
// the next Apply overwrites it in place.
func (kv *KV) replay() error {
	data, err := os.ReadFile(kv.path)
	if err != nil {
		return fmt.Errorf("storage: replay kv: %w", err)
	}
	off := 0
	for {
		payload, next, ok := frameAt(data, off)
		if !ok {
			break
		}
		if err := kv.index(payload, int64(off)); err != nil {
			return err
		}
		off = next
	}
	kv.size = int64(off)
	return nil
}

// index applies one replayed entry frame to the key directory.
func (kv *KV) index(payload []byte, frameOff int64) error {
	if len(payload) < 5 {
		return fmt.Errorf("%w: kv entry of %d bytes", ErrCorrupt, len(payload))
	}
	op := payload[0]
	klen := binary.BigEndian.Uint32(payload[1:5])
	if uint64(klen) > uint64(len(payload)-5) {
		return fmt.Errorf("%w: kv key length %d exceeds entry", ErrCorrupt, klen)
	}
	key := string(payload[5 : 5+klen])
	frameSize := int64(frameHeader + len(payload))
	if old, ok := kv.idx[key]; ok {
		kv.dead += int64(frameHeader+5) + int64(len(key)) + int64(old.size)
	}
	switch op {
	case kvOpPut:
		kv.idx[key] = kvLoc{
			off:  frameOff + frameHeader + 5 + int64(klen),
			size: uint32(len(payload) - 5 - int(klen)),
		}
	case kvOpDel:
		delete(kv.idx, key)
		kv.dead += frameSize // the tombstone itself is garbage too
	default:
		return fmt.Errorf("%w: kv op %d", ErrCorrupt, op)
	}
	return nil
}

// encodeKVEntry frames one op.
func encodeKVEntry(dst []byte, op KVOp) []byte {
	p := make([]byte, 0, 5+len(op.Key)+len(op.Val))
	code := byte(kvOpPut)
	if op.Del {
		code = kvOpDel
	}
	p = append(p, code)
	p = binary.BigEndian.AppendUint32(p, uint32(len(op.Key)))
	p = append(p, op.Key...)
	if !op.Del {
		p = append(p, op.Val...)
	}
	return appendFrame(dst, p)
}

// Apply durably applies a batch: one contiguous write, one fsync. The
// index is updated only after the fsync succeeds.
func (kv *KV) Apply(ops []KVOp) error {
	if len(ops) == 0 {
		return nil
	}
	kv.mu.Lock()
	defer kv.mu.Unlock()
	var buf []byte
	for _, op := range ops {
		buf = encodeKVEntry(buf, op)
	}
	if _, err := kv.f.WriteAt(buf, kv.size); err != nil {
		return fmt.Errorf("storage: kv write: %w", err)
	}
	if err := kv.f.Sync(); err != nil {
		return fmt.Errorf("storage: kv sync: %w", err)
	}
	// Re-index the batch from its serialized form so offsets are exact.
	off := kv.size
	data := buf
	pos := 0
	for {
		payload, next, ok := frameAt(data, pos)
		if !ok {
			break
		}
		if err := kv.index(payload, off+int64(pos)); err != nil {
			return err
		}
		pos = next
	}
	kv.size += int64(len(buf))
	if kv.size > kvCompactMinSize && kv.dead*2 > kv.size {
		return kv.compactLocked()
	}
	return nil
}

// Get reads one value. The read happens under the lock so a concurrent
// compaction cannot swap the data file out from under it.
func (kv *KV) Get(key string) ([]byte, bool, error) {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	loc, ok := kv.idx[key]
	if !ok {
		return nil, false, nil
	}
	buf := make([]byte, loc.size)
	if _, err := kv.f.ReadAt(buf, loc.off); err != nil {
		return nil, false, fmt.Errorf("storage: kv read %q: %w", key, err)
	}
	return buf, true, nil
}

// Keys returns the live keys with the given prefix, sorted.
func (kv *KV) Keys(prefix string) []string {
	kv.mu.Lock()
	keys := make([]string, 0, 16)
	for k := range kv.idx {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	kv.mu.Unlock()
	sort.Strings(keys)
	return keys
}

// Iter streams live (key, value) pairs under prefix in sorted key
// order. Values read under the lock, so Iter observes one atomic state;
// fn must not call back into the KV.
func (kv *KV) Iter(prefix string, fn func(key string, val []byte) error) error {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	keys := make([]string, 0, 16)
	for k := range kv.idx {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		loc := kv.idx[k]
		buf := make([]byte, loc.size)
		if _, err := kv.f.ReadAt(buf, loc.off); err != nil {
			return fmt.Errorf("storage: kv read %q: %w", k, err)
		}
		if err := fn(k, buf); err != nil {
			return err
		}
	}
	return nil
}

// Compact folds the store: live entries are rewritten into a fresh
// file, fsynced, and renamed over the data file.
func (kv *KV) Compact() error {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	return kv.compactLocked()
}

func (kv *KV) compactLocked() error {
	dir, base := filepath.Split(kv.path)
	tmp, err := os.CreateTemp(dir, "."+base+".tmp-*")
	if err != nil {
		return fmt.Errorf("storage: kv compact: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op once renamed
	keys := make([]string, 0, len(kv.idx))
	for k := range kv.idx {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []byte
	newIdx := make(map[string]kvLoc, len(keys))
	for _, k := range keys {
		loc := kv.idx[k]
		val := make([]byte, loc.size)
		if _, err := kv.f.ReadAt(val, loc.off); err != nil {
			tmp.Close()
			return fmt.Errorf("storage: kv compact read %q: %w", k, err)
		}
		newIdx[k] = kvLoc{off: int64(len(out)) + frameHeader + 5 + int64(len(k)), size: loc.size}
		out = encodeKVEntry(out, KVOp{Key: k, Val: val})
	}
	_, werr := tmp.Write(out)
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), kv.path)
	}
	if werr != nil {
		return fmt.Errorf("storage: kv compact: %w", werr)
	}
	f, err := os.OpenFile(kv.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("storage: kv reopen after compact: %w", err)
	}
	kv.f.Close()
	kv.f = f
	kv.idx = newIdx
	kv.size = int64(len(out))
	kv.dead = 0
	return nil
}

// Sizes reports the data-file extent and its dead (garbage) bytes.
func (kv *KV) Sizes() (size, dead int64) {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	return kv.size, kv.dead
}

// Close releases the data file.
func (kv *KV) Close() error {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	return kv.f.Close()
}
