package storage

import (
	"errors"
	"fmt"
	"sync"
)

// Fault wraps a Backend for crash testing: it counts calls per
// operation and, at a configured kill point, returns ErrKilled either
// before the operation runs (the write never happened) or after it
// completed (the write landed but the caller thinks it failed — the
// harder crash to survive). Once killed, the backend stays dead: every
// further mutating call fails, modeling a process that never got to
// run its cleanup.
type Fault struct {
	b Backend

	mu     sync.Mutex
	calls  map[string]int
	before map[string]int
	after  map[string]int
	dead   bool
}

// ErrKilled is returned at and after a Fault kill point.
var ErrKilled = errors.New("storage: killed by fault injection")

// Operation names for kill points and call counting.
const (
	OpMeta            = "meta"
	OpWriteCheckpoint = "write_checkpoint"
	OpReadCheckpoint  = "read_checkpoint"
	OpAppend          = "append"
	OpReplay          = "replay"
	OpCommit          = "commit"
	OpDrop            = "drop"
)

// NewFault wraps b with no kill points armed.
func NewFault(b Backend) *Fault {
	return &Fault{
		b:      b,
		calls:  make(map[string]int),
		before: make(map[string]int),
		after:  make(map[string]int),
	}
}

// Unwrap returns the wrapped backend (kill points do not apply to
// calls made on it directly — tests use it to inspect state post-kill).
func (f *Fault) Unwrap() Backend { return f.b }

// KillBefore arms a kill immediately before the n-th (1-based) call to
// op: the operation does not run.
func (f *Fault) KillBefore(op string, n int) {
	f.mu.Lock()
	f.before[op] = n
	f.mu.Unlock()
}

// KillAfter arms a kill immediately after the n-th (1-based) call to
// op completes: its effect persists but the error reaches the caller.
func (f *Fault) KillAfter(op string, n int) {
	f.mu.Lock()
	f.after[op] = n
	f.mu.Unlock()
}

// Calls reports how many times op has been invoked.
func (f *Fault) Calls(op string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls[op]
}

// Dead reports whether a kill point has fired.
func (f *Fault) Dead() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dead
}

// enter counts the call and decides the kill: (skip=true) means the
// operation must not run.
func (f *Fault) enter(op string) (skip bool, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dead {
		return true, fmt.Errorf("%w (%s after death)", ErrKilled, op)
	}
	f.calls[op]++
	if n, ok := f.before[op]; ok && f.calls[op] == n {
		f.dead = true
		return true, fmt.Errorf("%w (before %s #%d)", ErrKilled, op, n)
	}
	return false, nil
}

// exit applies an after-kill once the operation completed.
func (f *Fault) exit(op string, opErr error) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if n, ok := f.after[op]; ok && f.calls[op] == n && !f.dead {
		f.dead = true
		if opErr == nil {
			return fmt.Errorf("%w (after %s #%d)", ErrKilled, op, n)
		}
	}
	return opErr
}

// Meta implements Backend.
func (f *Fault) Meta() (Meta, error) {
	if skip, err := f.enter(OpMeta); skip {
		return Meta{}, err
	}
	m, err := f.b.Meta()
	return m, f.exit(OpMeta, err)
}

// WriteCheckpoint implements Backend.
func (f *Fault) WriteCheckpoint(shard string, gen uint64, recs []Record) error {
	if skip, err := f.enter(OpWriteCheckpoint); skip {
		return err
	}
	return f.exit(OpWriteCheckpoint, f.b.WriteCheckpoint(shard, gen, recs))
}

// ReadCheckpoint implements Backend.
func (f *Fault) ReadCheckpoint(shard string, gen uint64, want uint64, fn func(Record) error) error {
	if skip, err := f.enter(OpReadCheckpoint); skip {
		return err
	}
	return f.exit(OpReadCheckpoint, f.b.ReadCheckpoint(shard, gen, want, fn))
}

// Append implements Backend.
func (f *Fault) Append(shard string, gen, at uint64, recs []Record) (uint64, error) {
	if skip, err := f.enter(OpAppend); skip {
		return 0, err
	}
	n, err := f.b.Append(shard, gen, at, recs)
	return n, f.exit(OpAppend, err)
}

// ReplayLog implements Backend.
func (f *Fault) ReplayLog(shard string, gen, upTo uint64, fn func(Record) error) error {
	if skip, err := f.enter(OpReplay); skip {
		return err
	}
	return f.exit(OpReplay, f.b.ReplayLog(shard, gen, upTo, fn))
}

// Commit implements Backend.
func (f *Fault) Commit(meta Meta) error {
	if skip, err := f.enter(OpCommit); skip {
		return err
	}
	return f.exit(OpCommit, f.b.Commit(meta))
}

// DropShard implements Backend.
func (f *Fault) DropShard(shard string) error {
	if skip, err := f.enter(OpDrop); skip {
		return err
	}
	return f.exit(OpDrop, f.b.DropShard(shard))
}

// Close implements Backend (never killed — even a dying process's fds
// get closed).
func (f *Fault) Close() error { return f.b.Close() }
