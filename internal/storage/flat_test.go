package storage

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func flatRecs(n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{Type: RecExec, Key: "e", Data: []byte("payload")}
	}
	return recs
}

func TestFlatTornLogTailIgnored(t *testing.T) {
	dir := t.TempDir()
	f, err := OpenFlat(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.WriteCheckpoint("s", 1, nil); err != nil {
		t.Fatal(err)
	}
	ln, err := f.Append("s", 1, 0, flatRecs(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Commit(Meta{Generation: 1, Shards: map[string]ShardInfo{
		"s": {Checkpoint: 1, LogLen: ln},
	}}); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: garbage bytes past the committed extent.
	logPath := filepath.Join(dir, walName("s", 1))
	fd, err := os.OpenFile(logPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fd.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	fd.Close()

	// Replay within the committed extent is unaffected.
	var n int
	if err := f.ReplayLog("s", 1, ln, func(Record) error { n++; return nil }); err != nil {
		t.Fatalf("replay with torn tail: %v", err)
	}
	if n != 2 {
		t.Fatalf("replayed %d records, want 2", n)
	}
	// The next append truncates the garbage and lands cleanly.
	ln2, err := f.Append("s", 1, ln, flatRecs(1))
	if err != nil {
		t.Fatalf("append over torn tail: %v", err)
	}
	n = 0
	if err := f.ReplayLog("s", 1, ln2, func(Record) error { n++; return nil }); err != nil {
		t.Fatalf("replay after overwrite: %v", err)
	}
	if n != 3 {
		t.Fatalf("replayed %d records, want 3", n)
	}
}

func TestFlatStaleTempSweepAgeGuarded(t *testing.T) {
	dir := t.TempDir()
	f, err := OpenFlat(dir)
	if err != nil {
		t.Fatal(err)
	}
	// A crashed writer's litter (old) and a live writer's temp (fresh).
	stale := filepath.Join(dir, ".manifest.json.tmp-123")
	fresh := filepath.Join(dir, ".manifest.json.tmp-456")
	for _, p := range []string{stale, fresh} {
		if err := os.WriteFile(p, []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * tempMaxAge)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	if err := f.WriteCheckpoint("s", 1, flatRecs(1)); err != nil {
		t.Fatal(err)
	}
	if err := f.Commit(Meta{Generation: 1, Shards: map[string]ShardInfo{
		"s": {Checkpoint: 1, Records: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Errorf("stale temp survived the sweep (stat err = %v)", err)
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Errorf("fresh temp was swept: %v", err)
	}
}

func TestFlatCommitPrunesLegacyAndOldGenerations(t *testing.T) {
	dir := t.TempDir()
	// A migrated directory still holding legacy per-entity files.
	legacy := []string{"spec-a.json", "policy-a.json", "exec-a-1.json"}
	for _, name := range legacy {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	f, err := OpenFlat(dir)
	if err != nil {
		t.Fatal(err)
	}
	commit := func(gen uint64) {
		t.Helper()
		if err := f.WriteCheckpoint("s", gen, flatRecs(1)); err != nil {
			t.Fatal(err)
		}
		if err := f.Commit(Meta{Generation: gen, Shards: map[string]ShardInfo{
			"s": {Checkpoint: gen, Records: 1},
		}}); err != nil {
			t.Fatal(err)
		}
	}
	commit(1)
	for _, name := range legacy {
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Errorf("legacy file %s survived commit (stat err = %v)", name, err)
		}
	}
	// Generation pruning keeps the previous generation for in-flight
	// readers and drops anything older.
	commit(2)
	commit(3)
	if _, err := os.Stat(filepath.Join(dir, ckptName("s", 1))); !os.IsNotExist(err) {
		t.Errorf("generation 1 checkpoint survived two commits (stat err = %v)", err)
	}
	if _, err := os.Stat(filepath.Join(dir, ckptName("s", 2))); err != nil {
		t.Errorf("previous generation pruned too eagerly: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, ckptName("s", 3))); err != nil {
		t.Errorf("current generation missing: %v", err)
	}
}

func TestFlatLegacyManifestDetected(t *testing.T) {
	dir := t.TempDir()
	legacyManifest := `{"specs":["spec-a.json"],"policies":[],"executions":[]}`
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte(legacyManifest), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := OpenFlat(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Meta(); err != ErrLegacyLayout {
		t.Fatalf("Meta on legacy dir = %v, want ErrLegacyLayout", err)
	}
}
