// Package storagetest holds the shared conformance suite every
// storage.Backend implementation must pass. It lives outside package
// storage so production binaries don't link the testing package.
package storagetest

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"provpriv/internal/storage"
)

// Conformance runs the shared Backend contract suite against the
// backend produced by open. open is called with a fresh directory per
// subtest; reopening the same directory must observe the committed
// state (crash-recovery semantics).
func Conformance(t *testing.T, open func(dir string) (storage.Backend, error)) {
	t.Helper()

	mustOpen := func(t *testing.T, dir string) storage.Backend {
		t.Helper()
		b, err := open(dir)
		if err != nil {
			t.Fatalf("open %s: %v", dir, err)
		}
		return b
	}

	rec := func(typ storage.RecordType, key, data string) storage.Record {
		return storage.Record{Type: typ, Key: key, Data: []byte(data)}
	}

	collect := func(t *testing.T, read func(fn func(storage.Record) error) error) []storage.Record {
		t.Helper()
		var recs []storage.Record
		if err := read(func(r storage.Record) error {
			recs = append(recs, r)
			return nil
		}); err != nil {
			t.Fatalf("read records: %v", err)
		}
		return recs
	}

	wantRecords := func(t *testing.T, got, want []storage.Record) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("got %d records, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i].Type != want[i].Type || got[i].Key != want[i].Key ||
				!bytes.Equal(got[i].Data, want[i].Data) {
				t.Fatalf("record %d = {%v %q %q}, want {%v %q %q}",
					i, got[i].Type, got[i].Key, got[i].Data,
					want[i].Type, want[i].Key, want[i].Data)
			}
		}
	}

	t.Run("EmptyMeta", func(t *testing.T) {
		b := mustOpen(t, t.TempDir())
		defer b.Close()
		m, err := b.Meta()
		if err != nil {
			t.Fatalf("Meta on empty store: %v", err)
		}
		if m.Generation != 0 || len(m.Shards) != 0 {
			t.Fatalf("empty store meta = %+v, want zero", m)
		}
	})

	t.Run("CheckpointRoundTrip", func(t *testing.T) {
		dir := t.TempDir()
		b := mustOpen(t, dir)
		recs := []storage.Record{
			rec(storage.RecSpec, "wf/alpha", `{"id":"wf/alpha"}`),
			rec(storage.RecPolicy, "wf/alpha", `{"spec":"wf/alpha"}`),
			rec(storage.RecExec, "e1", `{"id":"e1"}`),
		}
		if err := b.WriteCheckpoint("wf/alpha", 1, recs); err != nil {
			t.Fatalf("WriteCheckpoint: %v", err)
		}
		meta := storage.Meta{Generation: 1, Shards: map[string]storage.ShardInfo{
			"wf/alpha": {Checkpoint: 1, Records: 3},
		}}
		if err := b.Commit(meta); err != nil {
			t.Fatalf("Commit: %v", err)
		}
		wantRecords(t, collect(t, func(fn func(storage.Record) error) error {
			return b.ReadCheckpoint("wf/alpha", 1, 3, fn)
		}), recs)
		b.Close()

		// Reopen: committed state must survive.
		b2 := mustOpen(t, dir)
		defer b2.Close()
		m, err := b2.Meta()
		if err != nil {
			t.Fatalf("Meta after reopen: %v", err)
		}
		if m.Generation != 1 || m.Shards["wf/alpha"].Records != 3 {
			t.Fatalf("reopened meta = %+v", m)
		}
		wantRecords(t, collect(t, func(fn func(storage.Record) error) error {
			return b2.ReadCheckpoint("wf/alpha", 1, 3, fn)
		}), recs)
	})

	t.Run("AppendReplayCommittedExtent", func(t *testing.T) {
		b := mustOpen(t, t.TempDir())
		defer b.Close()
		if err := b.WriteCheckpoint("s", 1, nil); err != nil {
			t.Fatalf("WriteCheckpoint: %v", err)
		}
		batch1 := []storage.Record{rec(storage.RecExec, "e1", "one"), rec(storage.RecExec, "e2", "two")}
		len1, err := b.Append("s", 1, 0, batch1)
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		if err := b.Commit(storage.Meta{Generation: 1, Shards: map[string]storage.ShardInfo{
			"s": {Checkpoint: 1, Records: 0, LogLen: len1},
		}}); err != nil {
			t.Fatalf("Commit: %v", err)
		}
		batch2 := []storage.Record{rec(storage.RecExec, "e3", "three")}
		len2, err := b.Append("s", 1, len1, batch2)
		if err != nil {
			t.Fatalf("Append 2: %v", err)
		}
		if len2 <= len1 {
			t.Fatalf("extent did not grow: %d -> %d", len1, len2)
		}
		if err := b.Commit(storage.Meta{Generation: 2, Shards: map[string]storage.ShardInfo{
			"s": {Checkpoint: 1, Records: 0, LogLen: len2},
		}}); err != nil {
			t.Fatalf("Commit 2: %v", err)
		}
		wantRecords(t, collect(t, func(fn func(storage.Record) error) error {
			return b.ReplayLog("s", 1, len2, fn)
		}), append(append([]storage.Record{}, batch1...), batch2...))
	})

	t.Run("UncommittedTailInvisible", func(t *testing.T) {
		dir := t.TempDir()
		b := mustOpen(t, dir)
		if err := b.WriteCheckpoint("s", 1, nil); err != nil {
			t.Fatalf("WriteCheckpoint: %v", err)
		}
		committed := []storage.Record{rec(storage.RecExec, "e1", "one")}
		len1, err := b.Append("s", 1, 0, committed)
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		if err := b.Commit(storage.Meta{Generation: 1, Shards: map[string]storage.ShardInfo{
			"s": {Checkpoint: 1, LogLen: len1},
		}}); err != nil {
			t.Fatalf("Commit: %v", err)
		}
		// Crash scenario: records appended but never committed.
		if _, err := b.Append("s", 1, len1, []storage.Record{rec(storage.RecExec, "orphan", "x")}); err != nil {
			t.Fatalf("Append orphan: %v", err)
		}
		b.Close()

		b2 := mustOpen(t, dir)
		defer b2.Close()
		m, err := b2.Meta()
		if err != nil {
			t.Fatalf("Meta: %v", err)
		}
		if m.Shards["s"].LogLen != len1 {
			t.Fatalf("committed extent = %d, want %d", m.Shards["s"].LogLen, len1)
		}
		// Replay to the committed extent: the orphan must not appear.
		wantRecords(t, collect(t, func(fn func(storage.Record) error) error {
			return b2.ReplayLog("s", 1, len1, fn)
		}), committed)
		// The next append at the committed extent overwrites the orphan.
		replacement := []storage.Record{rec(storage.RecExec, "e2", "two")}
		len2, err := b2.Append("s", 1, len1, replacement)
		if err != nil {
			t.Fatalf("Append over orphan: %v", err)
		}
		if err := b2.Commit(storage.Meta{Generation: 2, Shards: map[string]storage.ShardInfo{
			"s": {Checkpoint: 1, LogLen: len2},
		}}); err != nil {
			t.Fatalf("Commit: %v", err)
		}
		wantRecords(t, collect(t, func(fn func(storage.Record) error) error {
			return b2.ReplayLog("s", 1, len2, fn)
		}), append(append([]storage.Record{}, committed...), replacement...))
	})

	t.Run("CommitIsAtomicOverCrash", func(t *testing.T) {
		// New-generation checkpoints written but not committed must be
		// invisible after reopen — the heart of the torn-snapshot fix.
		dir := t.TempDir()
		b := mustOpen(t, dir)
		v1 := []storage.Record{rec(storage.RecSpec, "s", "v1")}
		if err := b.WriteCheckpoint("s", 1, v1); err != nil {
			t.Fatalf("WriteCheckpoint: %v", err)
		}
		if err := b.Commit(storage.Meta{Generation: 1, Shards: map[string]storage.ShardInfo{
			"s": {Checkpoint: 1, Records: 1},
		}}); err != nil {
			t.Fatalf("Commit: %v", err)
		}
		// Start generation 2 but "crash" before Commit.
		if err := b.WriteCheckpoint("s", 2, []storage.Record{rec(storage.RecSpec, "s", "v2")}); err != nil {
			t.Fatalf("WriteCheckpoint gen2: %v", err)
		}
		b.Close()

		b2 := mustOpen(t, dir)
		defer b2.Close()
		m, err := b2.Meta()
		if err != nil {
			t.Fatalf("Meta: %v", err)
		}
		if m.Generation != 1 || m.Shards["s"].Checkpoint != 1 {
			t.Fatalf("uncommitted generation leaked into meta: %+v", m)
		}
		wantRecords(t, collect(t, func(fn func(storage.Record) error) error {
			return b2.ReadCheckpoint("s", 1, 1, fn)
		}), v1)
	})

	t.Run("GenerationIsolation", func(t *testing.T) {
		b := mustOpen(t, t.TempDir())
		defer b.Close()
		if err := b.WriteCheckpoint("s", 1, []storage.Record{rec(storage.RecSpec, "s", "v1")}); err != nil {
			t.Fatalf("WriteCheckpoint gen1: %v", err)
		}
		if err := b.WriteCheckpoint("s", 2, []storage.Record{rec(storage.RecSpec, "s", "v2")}); err != nil {
			t.Fatalf("WriteCheckpoint gen2: %v", err)
		}
		// Writing generation 2 must not disturb generation 1.
		wantRecords(t, collect(t, func(fn func(storage.Record) error) error {
			return b.ReadCheckpoint("s", 1, 1, fn)
		}), []storage.Record{rec(storage.RecSpec, "s", "v1")})
		wantRecords(t, collect(t, func(fn func(storage.Record) error) error {
			return b.ReadCheckpoint("s", 2, 1, fn)
		}), []storage.Record{rec(storage.RecSpec, "s", "v2")})
	})

	t.Run("RecordCountMismatchDetected", func(t *testing.T) {
		b := mustOpen(t, t.TempDir())
		defer b.Close()
		if err := b.WriteCheckpoint("s", 1, []storage.Record{rec(storage.RecSpec, "s", "v1")}); err != nil {
			t.Fatalf("WriteCheckpoint: %v", err)
		}
		err := b.ReadCheckpoint("s", 1, 2, func(storage.Record) error { return nil })
		if !errors.Is(err, storage.ErrCorrupt) {
			t.Fatalf("short checkpoint read err = %v, want ErrCorrupt", err)
		}
	})

	t.Run("DropShard", func(t *testing.T) {
		b := mustOpen(t, t.TempDir())
		defer b.Close()
		for _, s := range []string{"keep", "drop"} {
			if err := b.WriteCheckpoint(s, 1, []storage.Record{rec(storage.RecSpec, s, s)}); err != nil {
				t.Fatalf("WriteCheckpoint %s: %v", s, err)
			}
			if _, err := b.Append(s, 1, 0, []storage.Record{rec(storage.RecExec, s+"-e", "x")}); err != nil {
				t.Fatalf("Append %s: %v", s, err)
			}
		}
		if err := b.Commit(storage.Meta{Generation: 1, Shards: map[string]storage.ShardInfo{
			"keep": {Checkpoint: 1, Records: 1},
		}}); err != nil {
			t.Fatalf("Commit: %v", err)
		}
		if err := b.DropShard("drop"); err != nil {
			t.Fatalf("DropShard: %v", err)
		}
		wantRecords(t, collect(t, func(fn func(storage.Record) error) error {
			return b.ReadCheckpoint("keep", 1, 1, fn)
		}), []storage.Record{rec(storage.RecSpec, "keep", "keep")})
		if err := b.ReadCheckpoint("drop", 1, 1, func(storage.Record) error { return nil }); err == nil {
			t.Fatal("dropped shard still readable")
		}
	})

	t.Run("OddKeysAndBinaryData", func(t *testing.T) {
		dir := t.TempDir()
		b := mustOpen(t, dir)
		shard := "wf/π name\x00with/odd:chars"
		data := []byte{0, 1, 2, 255, 254, '\n', '"'}
		recs := []storage.Record{{Type: storage.RecExec, Key: "exec\x00id", Data: data}}
		if err := b.WriteCheckpoint(shard, 1, recs); err != nil {
			t.Fatalf("WriteCheckpoint: %v", err)
		}
		if err := b.Commit(storage.Meta{Generation: 1, Shards: map[string]storage.ShardInfo{
			shard: {Checkpoint: 1, Records: 1},
		}}); err != nil {
			t.Fatalf("Commit: %v", err)
		}
		b.Close()
		b2 := mustOpen(t, dir)
		defer b2.Close()
		wantRecords(t, collect(t, func(fn func(storage.Record) error) error {
			return b2.ReadCheckpoint(shard, 1, 1, fn)
		}), recs)
	})

	t.Run("ConcurrentReadersDuringWrites", func(t *testing.T) {
		// Single writer advancing generations; readers churning over Meta
		// + checkpoint + log must always observe one committed snapshot.
		// Pruning only spares the immediately previous generation, so a
		// reader whose Meta fell further behind retries with a fresh one.
		b := mustOpen(t, t.TempDir())
		defer b.Close()
		const shards = 3
		shardID := func(i int) string { return fmt.Sprintf("s%d", i) }

		var latest sync.Map // shard id -> committed generation
		commitVersion := func(v uint64) error {
			meta := storage.Meta{Generation: v, Shards: map[string]storage.ShardInfo{}}
			payload := fmt.Sprintf("v%d", v)
			for i := 0; i < shards; i++ {
				if err := b.WriteCheckpoint(shardID(i), v, []storage.Record{rec(storage.RecSpec, shardID(i), payload)}); err != nil {
					return err
				}
				ln, err := b.Append(shardID(i), v, 0, []storage.Record{rec(storage.RecExec, payload, payload)})
				if err != nil {
					return err
				}
				meta.Shards[shardID(i)] = storage.ShardInfo{Checkpoint: v, Records: 1, LogLen: ln}
			}
			// Record the version before Commit: pruning runs inside it, and
			// readers consult latest to decide whether a failed read means
			// inconsistency or just an overheld snapshot.
			for i := 0; i < shards; i++ {
				latest.Store(shardID(i), v)
			}
			return b.Commit(meta)
		}
		if err := commitVersion(1); err != nil {
			t.Fatalf("seed commit: %v", err)
		}

		done := make(chan struct{})
		var wg sync.WaitGroup
		readErr := make(chan error, 8)
		for r := 0; r < 4; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-done:
						return
					default:
					}
					m, err := b.Meta()
					if err != nil {
						readErr <- err
						return
					}
					for sid, info := range m.Shards {
						err := b.ReadCheckpoint(sid, info.Checkpoint, info.Records, func(storage.Record) error { return nil })
						if err == nil {
							err = b.ReplayLog(sid, info.Checkpoint, info.LogLen, func(storage.Record) error { return nil })
						}
						if err != nil {
							// In contract, a commit spares the previous
							// generation: a failure is only an inconsistency if
							// our snapshot was still within one commit of tip.
							if cur, ok := latest.Load(sid); ok && cur.(uint64) > info.Checkpoint+1 {
								break // overheld snapshot; retry with fresh Meta
							}
							readErr <- fmt.Errorf("shard %s gen %d: %w", sid, info.Checkpoint, err)
							return
						}
					}
				}
			}()
		}
		for v := uint64(2); v <= 12; v++ {
			if err := commitVersion(v); err != nil {
				t.Fatalf("commit v%d: %v", v, err)
			}
		}
		close(done)
		wg.Wait()
		select {
		case err := <-readErr:
			t.Fatalf("reader observed inconsistency: %v", err)
		default:
		}
	})
}
