// Package storage is the crash-safe persistence engine behind
// internal/repo: per-shard append-only logs of typed, CRC-framed
// records, immutable generation-numbered checkpoints, and a manifest
// (Meta) that is committed atomically *last* — so no reader can ever
// pair manifest generation N with shard state from generation N+1.
//
// The contract, shared by every Backend implementation:
//
//   - A shard's durable state is one checkpoint (a full fold of the
//     shard, written under a fresh generation number and immutable once
//     written) plus one append-only log of mutation records extending
//     that checkpoint.
//   - Checkpoints and logs under a new generation are invisible — and a
//     crash leaves them as harmless orphans — until Commit atomically
//     publishes a Meta referencing them. Commit is the single
//     durability point of a save.
//   - Meta records, per shard, the checkpoint generation, the
//     checkpoint's record count, and the committed log extent (LogLen,
//     in backend-defined units: bytes for flat files, records for the
//     KV store). Readers replay the log only up to LogLen: records a
//     crashed writer appended past the last commit are ignored, and the
//     next Append(at=LogLen) overwrites them. A torn tail therefore
//     never corrupts a committed snapshot.
//   - Within the committed extent, every record is CRC-framed; a CRC
//     mismatch there is real corruption and is reported, not skipped.
//
// Writers are exclusive: at most one goroutine may run mutating calls
// (WriteCheckpoint/Append/Commit/DropShard) at a time — internal/repo
// serializes saves under its own lock. Readers (Meta/ReadCheckpoint/
// ReplayLog) may run concurrently with the writer and with each other;
// Commit spares the files of the previously committed generation so a
// reader holding the prior Meta can still finish.
package storage

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"strings"
)

// RecordType tags a log/checkpoint record's payload.
type RecordType uint8

const (
	// RecSpec carries a workflow specification (JSON). Key: spec id.
	RecSpec RecordType = iota + 1
	// RecPolicy carries a privacy policy (JSON). Key: spec id.
	RecPolicy
	// RecExec carries one execution (JSON). Key: execution id.
	RecExec
	// RecHier carries a spec's generalization hierarchies (JSON map of
	// attribute to ladder). Key: spec id.
	RecHier
	// RecAudit carries one mutation audit entry (JSON, internal/audit).
	// Key: decimal sequence number. Audit records live in their own
	// backend directory, never in a repository shard.
	RecAudit
)

func (t RecordType) String() string {
	switch t {
	case RecSpec:
		return "spec"
	case RecPolicy:
		return "policy"
	case RecExec:
		return "exec"
	case RecHier:
		return "hier"
	case RecAudit:
		return "audit"
	}
	return fmt.Sprintf("record(%d)", uint8(t))
}

// Record is one typed mutation: a spec/policy/hierarchy replacement or
// an execution append, with its JSON payload.
type Record struct {
	Type RecordType
	Key  string
	Data []byte
}

// ShardInfo is one shard's entry in the committed manifest.
type ShardInfo struct {
	// Checkpoint is the generation number of the shard's current
	// checkpoint (checkpoints are immutable and named by generation, so
	// a new one never overwrites the one a concurrent reader is on).
	Checkpoint uint64 `json:"checkpoint"`
	// Records is the checkpoint's record count; readers verify it so a
	// partially missing checkpoint is detected, not silently shortened.
	Records uint64 `json:"records"`
	// LogLen is the committed extent of the shard's append log in
	// backend units (bytes for flat files, records for the KV store).
	// Log content past it is an uncommitted orphan tail.
	LogLen uint64 `json:"log_len,omitempty"`
}

// Meta is the checkpointed manifest: the generation-numbered pointer
// set that Commit swaps atomically last.
type Meta struct {
	Generation uint64               `json:"generation"`
	Shards     map[string]ShardInfo `json:"shards,omitempty"`
	// Users is the serialized user registry (repo-level state that has
	// no shard to live in).
	Users json.RawMessage `json:"users,omitempty"`
}

var (
	// ErrLegacyLayout marks a directory written by the pre-log Save
	// (flat per-entity JSON files): readable by internal/repo's legacy
	// loader, not by a Backend.
	ErrLegacyLayout = errors.New("storage: legacy (pre-log) layout")
	// ErrCorrupt marks invalid record data inside a committed extent —
	// real damage, as opposed to an ignorable uncommitted tail.
	ErrCorrupt = errors.New("storage: corrupt record")
)

// Backend is a pluggable crash-safe shard store. See the package
// comment for the shared durability contract.
type Backend interface {
	// Meta returns the last committed manifest, or a zero Meta when the
	// store is empty, or ErrLegacyLayout for a pre-log directory.
	Meta() (Meta, error)
	// WriteCheckpoint durably writes a full shard fold under gen. It
	// must not disturb checkpoints of other generations; the result is
	// invisible until a Commit references it.
	WriteCheckpoint(shard string, gen uint64, recs []Record) error
	// ReadCheckpoint streams the checkpoint's records in write order
	// and fails with ErrCorrupt if they don't total want.
	ReadCheckpoint(shard string, gen uint64, want uint64, fn func(Record) error) error
	// Append durably appends records to the shard's gen log at offset
	// at (the committed LogLen), discarding any orphan tail beyond it,
	// and returns the new extent for the next Commit to publish.
	Append(shard string, gen, at uint64, recs []Record) (uint64, error)
	// ReplayLog streams the committed log records ([0, upTo)) in
	// append order.
	ReplayLog(shard string, gen, upTo uint64, fn func(Record) error) error
	// Commit atomically publishes meta. It is the durability point:
	// everything meta references must survive a crash once Commit
	// returns. It may garbage-collect state unreachable from both meta
	// and the previously committed manifest.
	Commit(meta Meta) error
	// DropShard removes a shard's checkpoints and logs across all
	// generations (called after a Commit that no longer references it).
	DropShard(shard string) error
	Close() error
}

// FileBase derives a stable, filesystem/key-safe name stem from an id:
// the sanitized id (truncated) plus a 64-bit FNV hash of the raw id, so
// distinct ids sharing a sanitized prefix are kept apart (collision
// odds ~2^-64 per pair; not adversarially safe — loaders validate
// content).
func FileBase(id string) string {
	var b strings.Builder
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
		if b.Len() >= 40 {
			break
		}
	}
	h := fnv.New64a()
	h.Write([]byte(id))
	return fmt.Sprintf("%s-%016x", b.String(), h.Sum64())
}

// Record payload layout: | u8 type | u32 key len | key | data |.
// Frame layout (flat-file logs): | u32 payload len | u32 CRC32(payload)
// | payload |. The KV backend stores bare payloads — its own frames
// already carry a CRC.

const (
	frameHeader   = 8       // u32 len + u32 crc
	maxPayloadLen = 1 << 30 // sanity bound; a spec or execution is MBs at most
)

// encodePayload renders a record's framed payload.
func encodePayload(rec Record) []byte {
	p := make([]byte, 0, 5+len(rec.Key)+len(rec.Data))
	p = append(p, byte(rec.Type))
	p = binary.BigEndian.AppendUint32(p, uint32(len(rec.Key)))
	p = append(p, rec.Key...)
	p = append(p, rec.Data...)
	return p
}

// decodePayload parses what encodePayload produced.
func decodePayload(p []byte) (Record, error) {
	if len(p) < 5 {
		return Record{}, fmt.Errorf("%w: payload of %d bytes", ErrCorrupt, len(p))
	}
	rec := Record{Type: RecordType(p[0])}
	klen := binary.BigEndian.Uint32(p[1:5])
	if uint64(klen) > uint64(len(p)-5) {
		return Record{}, fmt.Errorf("%w: key length %d exceeds payload", ErrCorrupt, klen)
	}
	rec.Key = string(p[5 : 5+klen])
	rec.Data = append([]byte(nil), p[5+klen:]...)
	return rec, nil
}

// appendFrame appends one CRC frame around payload.
func appendFrame(dst, payload []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.BigEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
	return append(dst, payload...)
}

// encodeFrames renders records as a contiguous frame sequence.
func encodeFrames(recs []Record) []byte {
	var size int
	for _, r := range recs {
		size += frameHeader + 5 + len(r.Key) + len(r.Data)
	}
	buf := make([]byte, 0, size)
	for _, r := range recs {
		buf = appendFrame(buf, encodePayload(r))
	}
	return buf
}

// frameAt validates the frame starting at off; ok is false when the
// frame is incomplete or its CRC fails (a torn tail, from the caller's
// point of view).
func frameAt(buf []byte, off int) (payload []byte, next int, ok bool) {
	if off+frameHeader > len(buf) {
		return nil, 0, false
	}
	n := binary.BigEndian.Uint32(buf[off:])
	crc := binary.BigEndian.Uint32(buf[off+4:])
	if uint64(n) > maxPayloadLen || off+frameHeader+int(n) > len(buf) {
		return nil, 0, false
	}
	payload = buf[off+frameHeader : off+frameHeader+int(n)]
	if crc32.ChecksumIEEE(payload) != crc {
		return nil, 0, false
	}
	return payload, off + frameHeader + int(n), true
}

// replayFrames strictly parses buf[0:upTo] as whole, CRC-clean frames —
// the committed-extent reader. Any damage inside is ErrCorrupt.
func replayFrames(buf []byte, upTo int, fn func(Record) error) error {
	off := 0
	for off < upTo {
		payload, next, ok := frameAt(buf[:upTo], off)
		if !ok {
			return fmt.Errorf("%w: bad frame at offset %d of committed extent %d", ErrCorrupt, off, upTo)
		}
		rec, err := decodePayload(payload)
		if err != nil {
			return err
		}
		if err := fn(rec); err != nil {
			return err
		}
		off = next
	}
	if off != upTo {
		return fmt.Errorf("%w: committed extent %d not frame-aligned", ErrCorrupt, upTo)
	}
	return nil
}

// validFrames returns the length of buf's longest clean frame prefix —
// the tail-truncation point for a log of unknown committed extent.
func validFrames(buf []byte) int {
	off := 0
	for {
		_, next, ok := frameAt(buf, off)
		if !ok {
			return off
		}
		off = next
	}
}
