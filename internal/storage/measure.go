package storage

import (
	"sync/atomic"
	"time"
)

// Measure wraps a Backend and counts every operation, so the server
// can surface storage activity in /stats and /metrics without the
// backends knowing about instrumentation.
type Measure struct {
	b Backend

	appends           atomic.Uint64 //provlint:counter
	appendRecords     atomic.Uint64 //provlint:counter
	appendNanos       atomic.Uint64 //provlint:counter
	replays           atomic.Uint64 //provlint:counter
	replayRecords     atomic.Uint64 //provlint:counter
	replayNanos       atomic.Uint64 //provlint:counter
	checkpoints       atomic.Uint64 //provlint:counter
	checkpointRecords atomic.Uint64 //provlint:counter
	checkpointNanos   atomic.Uint64 //provlint:counter
	checkpointReads   atomic.Uint64 //provlint:counter
	commits           atomic.Uint64 //provlint:counter
	commitNanos       atomic.Uint64 //provlint:counter
	drops             atomic.Uint64 //provlint:counter
	errors            atomic.Uint64 //provlint:counter
}

// NewMeasure wraps b.
func NewMeasure(b Backend) *Measure { return &Measure{b: b} }

// Unwrap returns the wrapped backend.
func (m *Measure) Unwrap() Backend { return m.b }

// MeasureStats is a point-in-time snapshot of the counters, shaped for
// the server's /stats JSON.
type MeasureStats struct {
	Appends           uint64 `json:"appends"`
	AppendRecords     uint64 `json:"append_records"`
	AppendNanos       uint64 `json:"append_nanos"`
	Replays           uint64 `json:"replays"`
	ReplayRecords     uint64 `json:"replay_records"`
	ReplayNanos       uint64 `json:"replay_nanos"`
	Checkpoints       uint64 `json:"checkpoints"`
	CheckpointRecords uint64 `json:"checkpoint_records"`
	CheckpointNanos   uint64 `json:"checkpoint_nanos"`
	CheckpointReads   uint64 `json:"checkpoint_reads"`
	Commits           uint64 `json:"commits"`
	CommitNanos       uint64 `json:"commit_nanos"`
	Drops             uint64 `json:"drops"`
	Errors            uint64 `json:"errors"`
}

// Stats snapshots the counters.
func (m *Measure) Stats() MeasureStats {
	return MeasureStats{
		Appends:           m.appends.Load(),
		AppendRecords:     m.appendRecords.Load(),
		AppendNanos:       m.appendNanos.Load(),
		Replays:           m.replays.Load(),
		ReplayRecords:     m.replayRecords.Load(),
		ReplayNanos:       m.replayNanos.Load(),
		Checkpoints:       m.checkpoints.Load(),
		CheckpointRecords: m.checkpointRecords.Load(),
		CheckpointNanos:   m.checkpointNanos.Load(),
		CheckpointReads:   m.checkpointReads.Load(),
		Commits:           m.commits.Load(),
		CommitNanos:       m.commitNanos.Load(),
		Drops:             m.drops.Load(),
		Errors:            m.errors.Load(),
	}
}

func (m *Measure) note(err error) error {
	if err != nil {
		m.errors.Add(1)
	}
	return err
}

// Meta implements Backend.
func (m *Measure) Meta() (Meta, error) {
	meta, err := m.b.Meta()
	return meta, m.note(err)
}

// WriteCheckpoint implements Backend.
func (m *Measure) WriteCheckpoint(shard string, gen uint64, recs []Record) error {
	start := time.Now()
	err := m.b.WriteCheckpoint(shard, gen, recs)
	m.checkpointNanos.Add(uint64(time.Since(start)))
	m.checkpoints.Add(1)
	m.checkpointRecords.Add(uint64(len(recs)))
	return m.note(err)
}

// ReadCheckpoint implements Backend.
func (m *Measure) ReadCheckpoint(shard string, gen uint64, want uint64, fn func(Record) error) error {
	m.checkpointReads.Add(1)
	return m.note(m.b.ReadCheckpoint(shard, gen, want, fn))
}

// Append implements Backend.
func (m *Measure) Append(shard string, gen, at uint64, recs []Record) (uint64, error) {
	start := time.Now()
	n, err := m.b.Append(shard, gen, at, recs)
	m.appendNanos.Add(uint64(time.Since(start)))
	m.appends.Add(1)
	m.appendRecords.Add(uint64(len(recs)))
	return n, m.note(err)
}

// ReplayLog implements Backend.
func (m *Measure) ReplayLog(shard string, gen, upTo uint64, fn func(Record) error) error {
	start := time.Now()
	m.replays.Add(1)
	err := m.b.ReplayLog(shard, gen, upTo, func(rec Record) error {
		m.replayRecords.Add(1)
		return fn(rec)
	})
	m.replayNanos.Add(uint64(time.Since(start)))
	return m.note(err)
}

// Commit implements Backend.
func (m *Measure) Commit(meta Meta) error {
	start := time.Now()
	err := m.b.Commit(meta)
	m.commitNanos.Add(uint64(time.Since(start)))
	m.commits.Add(1)
	return m.note(err)
}

// DropShard implements Backend.
func (m *Measure) DropShard(shard string) error {
	m.drops.Add(1)
	return m.note(m.b.DropShard(shard))
}

// Close implements Backend.
func (m *Measure) Close() error { return m.note(m.b.Close()) }
