package storage

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestKVRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.kv")
	kv, err := OpenKVFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := kv.Apply([]KVOp{
		{Key: "a", Val: []byte("1")},
		{Key: "b", Val: []byte("2")},
		{Key: "a", Val: []byte("3")}, // last write wins, even within a batch
	}); err != nil {
		t.Fatal(err)
	}
	got, ok, err := kv.Get("a")
	if err != nil || !ok || string(got) != "3" {
		t.Fatalf("Get(a) = %q, %v, %v; want 3", got, ok, err)
	}
	if err := kv.Apply([]KVOp{{Del: true, Key: "b"}}); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := kv.Get("b"); ok {
		t.Fatal("deleted key still present")
	}
	kv.Close()

	// Reopen: state rebuilt from the log.
	kv2, err := OpenKVFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer kv2.Close()
	got, ok, err = kv2.Get("a")
	if err != nil || !ok || string(got) != "3" {
		t.Fatalf("after reopen Get(a) = %q, %v, %v; want 3", got, ok, err)
	}
	if _, ok, _ := kv2.Get("b"); ok {
		t.Fatal("tombstone lost on reopen")
	}
	if keys := kv2.Keys(""); len(keys) != 1 || keys[0] != "a" {
		t.Fatalf("Keys = %v, want [a]", keys)
	}
}

func TestKVTornTailExcluded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.kv")
	kv, err := OpenKVFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := kv.Apply([]KVOp{{Key: "a", Val: []byte("durable")}}); err != nil {
		t.Fatal(err)
	}
	cleanSize, _ := kv.Sizes()
	kv.Close()
	// Crash mid-write: half a frame at the tail.
	fd, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fd.Write([]byte{0, 0, 0, 99, 1, 2}); err != nil {
		t.Fatal(err)
	}
	fd.Close()

	// Opening must not mutate the file: a Load may open a store that a
	// live writer is still appending to, so recovery only excludes the
	// torn tail from the extent.
	st, _ := os.Stat(path)
	tornSize := st.Size()
	kv2, err := OpenKVFile(path)
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	defer kv2.Close()
	if st, err = os.Stat(path); err != nil || st.Size() != tornSize {
		t.Fatalf("open mutated the file: size %d, want %d (err=%v)", st.Size(), tornSize, err)
	}
	got, ok, err := kv2.Get("a")
	if err != nil || !ok || string(got) != "durable" {
		t.Fatalf("Get(a) = %q, %v, %v", got, ok, err)
	}
	if size, _ := kv2.Sizes(); size != cleanSize {
		t.Fatalf("extent after reopen = %d, want clean prefix %d", size, cleanSize)
	}
	// The store is writable again: the next batch overwrites the torn
	// tail in place and replays cleanly.
	if err := kv2.Apply([]KVOp{{Key: "b", Val: []byte("new")}}); err != nil {
		t.Fatal(err)
	}
	if got, ok, _ := kv2.Get("b"); !ok || string(got) != "new" {
		t.Fatalf("Get(b) after recovery = %q, %v", got, ok)
	}
	kv2.Close()
	kv3, err := OpenKVFile(path)
	if err != nil {
		t.Fatalf("reopen after recovery write: %v", err)
	}
	defer kv3.Close()
	if got, ok, _ := kv3.Get("b"); !ok || string(got) != "new" {
		t.Fatalf("Get(b) after second reopen = %q, %v", got, ok)
	}
}

func TestKVCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.kv")
	kv, err := OpenKVFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	// Overwrite one key many times: most of the file becomes garbage.
	val := bytes.Repeat([]byte("x"), 512)
	for i := 0; i < 100; i++ {
		if err := kv.Apply([]KVOp{{Key: "hot", Val: val}, {Key: fmt.Sprintf("cold%02d", i), Val: []byte("v")}}); err != nil {
			t.Fatal(err)
		}
	}
	before, _ := kv.Sizes()
	if err := kv.Compact(); err != nil {
		t.Fatal(err)
	}
	after, dead := kv.Sizes()
	if after >= before {
		t.Fatalf("compaction did not shrink the file: %d -> %d", before, after)
	}
	if dead != 0 {
		t.Fatalf("dead bytes after compaction = %d, want 0", dead)
	}
	// All live data survived.
	if got, ok, _ := kv.Get("hot"); !ok || !bytes.Equal(got, val) {
		t.Fatal("hot key lost in compaction")
	}
	if keys := kv.Keys("cold"); len(keys) != 100 {
		t.Fatalf("cold keys after compaction = %d, want 100", len(keys))
	}
	// Compacted file replays correctly.
	kv.Close()
	kv2, err := OpenKVFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer kv2.Close()
	if got, ok, _ := kv2.Get("hot"); !ok || !bytes.Equal(got, val) {
		t.Fatal("hot key lost after compaction + reopen")
	}
}

func TestKVAutoCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.kv")
	kv, err := OpenKVFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	// Churn one key with a large value until the file passes the
	// auto-compaction gate (size > 64KB, dead > half).
	val := bytes.Repeat([]byte("y"), 8<<10)
	for i := 0; i < 40; i++ {
		if err := kv.Apply([]KVOp{{Key: "churn", Val: val}}); err != nil {
			t.Fatal(err)
		}
	}
	size, dead := kv.Sizes()
	if size > kvCompactMinSize && dead*2 > size {
		t.Fatalf("auto-compaction never fired: size=%d dead=%d", size, dead)
	}
	if got, ok, _ := kv.Get("churn"); !ok || !bytes.Equal(got, val) {
		t.Fatal("churned key lost")
	}
}

func TestKVIterSorted(t *testing.T) {
	kv, err := OpenKVFile(filepath.Join(t.TempDir(), "store.kv"))
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	if err := kv.Apply([]KVOp{
		{Key: "p/2", Val: []byte("b")},
		{Key: "p/1", Val: []byte("a")},
		{Key: "q/1", Val: []byte("z")},
	}); err != nil {
		t.Fatal(err)
	}
	var got []string
	if err := kv.Iter("p/", func(k string, v []byte) error {
		got = append(got, k+"="+string(v))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "p/1=a" || got[1] != "p/2=b" {
		t.Fatalf("Iter = %v", got)
	}
}
