package storage

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"
)

// Flat is the sharded flat-file backend: one immutable checkpoint file
// and one append-only log file per shard, named by generation, plus
// manifest.json. The manifest rename is the commit point; checkpoint
// files for a new generation get new names, so a crash — or a
// concurrent Load — between a checkpoint write and the manifest commit
// can only ever observe the old, fully consistent generation. This is
// the fix for the torn-snapshot bug of the pre-log Save, which renamed
// new shard content over stable names before the manifest.
type Flat struct {
	dir string

	mu sync.Mutex
	// prev is the most recently read or committed manifest; Commit
	// spares its files during pruning so a concurrent reader that
	// loaded it can still finish.
	prev Meta
	// havePrev guards against pruning on a Flat that never observed a
	// committed manifest (prev would falsely protect nothing).
	havePrev bool
}

// FormatLog identifies the log-engine manifest layout.
const FormatLog = "provpriv-log/1"

const manifestName = "manifest.json"

// tempMaxAge guards the stale-temp sweep: a crashed writer's temp file
// is unlinked only once it is old enough that no live writer can still
// own it.
const tempMaxAge = time.Hour

// OpenFlat opens (creating if missing) a flat-file store directory.
func OpenFlat(dir string) (*Flat, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: open flat %s: %w", dir, err)
	}
	return &Flat{dir: dir}, nil
}

// flatManifest is the on-disk manifest shape. The format key
// distinguishes it from the legacy layout's manifest, whose top-level
// keys were plain file-name lists.
type flatManifest struct {
	Format     string               `json:"format"`
	Generation uint64               `json:"generation"`
	Shards     map[string]ShardInfo `json:"shards,omitempty"`
	Users      json.RawMessage      `json:"users,omitempty"`
}

func ckptName(shard string, gen uint64) string {
	return fmt.Sprintf("ckpt-%s-%016x.log", FileBase(shard), gen)
}

func walName(shard string, gen uint64) string {
	return fmt.Sprintf("wal-%s-%016x.log", FileBase(shard), gen)
}

// Meta implements Backend.
func (f *Flat) Meta() (Meta, error) {
	data, err := os.ReadFile(filepath.Join(f.dir, manifestName))
	if errors.Is(err, os.ErrNotExist) {
		return Meta{}, nil
	}
	if err != nil {
		return Meta{}, fmt.Errorf("storage: read manifest: %w", err)
	}
	var m flatManifest
	if err := json.Unmarshal(data, &m); err != nil {
		return Meta{}, fmt.Errorf("storage: parse manifest: %w", err)
	}
	if m.Format == "" {
		return Meta{}, ErrLegacyLayout
	}
	if m.Format != FormatLog {
		return Meta{}, fmt.Errorf("storage: unsupported layout %q", m.Format)
	}
	meta := Meta{Generation: m.Generation, Shards: m.Shards, Users: m.Users}
	f.mu.Lock()
	f.prev, f.havePrev = meta, true
	f.mu.Unlock()
	return meta, nil
}

// WriteCheckpoint implements Backend: temp file, fsync, rename — under
// a generation-fresh name, so no live checkpoint is ever overwritten.
func (f *Flat) WriteCheckpoint(shard string, gen uint64, recs []Record) error {
	return writeFileAtomic(filepath.Join(f.dir, ckptName(shard, gen)), encodeFrames(recs))
}

// ReadCheckpoint implements Backend. Checkpoints were fsynced before
// the manifest referencing them committed, so any framing damage or
// record shortfall here is corruption, not a tolerable torn tail.
func (f *Flat) ReadCheckpoint(shard string, gen uint64, want uint64, fn func(Record) error) error {
	name := ckptName(shard, gen)
	data, err := os.ReadFile(filepath.Join(f.dir, name))
	if err != nil {
		return fmt.Errorf("storage: read checkpoint %s: %w", name, err)
	}
	var n uint64
	if err := replayFrames(data, len(data), func(rec Record) error {
		n++
		return fn(rec)
	}); err != nil {
		return fmt.Errorf("storage: checkpoint %s: %w", name, err)
	}
	if n != want {
		return fmt.Errorf("%w: checkpoint %s holds %d records, manifest says %d", ErrCorrupt, name, n, want)
	}
	return nil
}

// Append implements Backend. The committed extent `at` is
// authoritative: a shorter file means the filesystem lost committed
// data (error), a longer file carries a crashed save's orphan tail,
// which is truncated away before the new records land in its place.
func (f *Flat) Append(shard string, gen, at uint64, recs []Record) (uint64, error) {
	name := walName(shard, gen)
	fd, err := os.OpenFile(filepath.Join(f.dir, name), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return 0, fmt.Errorf("storage: append %s: %w", name, err)
	}
	defer fd.Close()
	st, err := fd.Stat()
	if err != nil {
		return 0, fmt.Errorf("storage: append %s: %w", name, err)
	}
	if uint64(st.Size()) < at {
		return 0, fmt.Errorf("%w: log %s is %d bytes, committed extent %d", ErrCorrupt, name, st.Size(), at)
	}
	if uint64(st.Size()) > at {
		if err := fd.Truncate(int64(at)); err != nil {
			return 0, fmt.Errorf("storage: truncate orphan tail of %s: %w", name, err)
		}
	}
	buf := encodeFrames(recs)
	if _, err := fd.WriteAt(buf, int64(at)); err != nil {
		return 0, fmt.Errorf("storage: append %s: %w", name, err)
	}
	if err := fd.Sync(); err != nil {
		return 0, fmt.Errorf("storage: sync %s: %w", name, err)
	}
	return at + uint64(len(buf)), nil
}

// ReplayLog implements Backend.
func (f *Flat) ReplayLog(shard string, gen, upTo uint64, fn func(Record) error) error {
	if upTo == 0 {
		return nil
	}
	name := walName(shard, gen)
	data, err := os.ReadFile(filepath.Join(f.dir, name))
	if err != nil {
		return fmt.Errorf("storage: read log %s: %w", name, err)
	}
	if uint64(len(data)) < upTo {
		return fmt.Errorf("%w: log %s is %d bytes, committed extent %d", ErrCorrupt, name, len(data), upTo)
	}
	if err := replayFrames(data, int(upTo), fn); err != nil {
		return fmt.Errorf("storage: log %s: %w", name, err)
	}
	return nil
}

// Commit implements Backend: fsync the directory (making the preceding
// checkpoint renames and log creations durable), atomically rename the
// new manifest into place, fsync again, then prune garbage. Crash
// anywhere before the manifest rename leaves the old manifest and a set
// of invisible new-generation orphans; crash after it leaves the new
// generation fully committed with the old one's files pending prune.
func (f *Flat) Commit(meta Meta) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := syncDir(f.dir); err != nil {
		return err
	}
	data, err := json.Marshal(flatManifest{
		Format: FormatLog, Generation: meta.Generation,
		Shards: meta.Shards, Users: meta.Users,
	})
	if err != nil {
		return fmt.Errorf("storage: encode manifest: %w", err)
	}
	if err := writeFileAtomic(filepath.Join(f.dir, manifestName), data); err != nil {
		return err
	}
	if err := syncDir(f.dir); err != nil {
		return err
	}
	prev := f.prev
	if !f.havePrev {
		prev = meta // nothing older to protect
	}
	f.prune(meta, prev)
	f.prev, f.havePrev = meta, true
	return nil
}

// prune removes files unreachable from both the just-committed and the
// previously committed manifest: superseded generations, legacy-layout
// entity files (spec-/policy-/exec-*.json — removed the first time a
// log-engine commit lands in a migrated directory), and stale temp
// files from crashed writers (age-guarded, so a concurrent writer's
// live temp is never unlinked). Removal failures are ignored: orphans
// are invisible to readers, and the next commit retries.
func (f *Flat) prune(cur, prev Meta) {
	referenced := map[string]bool{manifestName: true}
	for _, m := range []Meta{cur, prev} {
		for sid, info := range m.Shards {
			referenced[ckptName(sid, info.Checkpoint)] = true
			referenced[walName(sid, info.Checkpoint)] = true
		}
	}
	entries, err := os.ReadDir(f.dir)
	if err != nil {
		return
	}
	cutoff := time.Now().Add(-tempMaxAge)
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || referenced[name] {
			continue
		}
		switch {
		case strings.HasPrefix(name, "ckpt-") || strings.HasPrefix(name, "wal-"):
			os.Remove(filepath.Join(f.dir, name))
		case strings.HasSuffix(name, ".json") &&
			(strings.HasPrefix(name, "spec-") || strings.HasPrefix(name, "policy-") ||
				strings.HasPrefix(name, "exec-")):
			os.Remove(filepath.Join(f.dir, name))
		case strings.HasPrefix(name, ".") && strings.Contains(name, ".tmp-"):
			if info, err := e.Info(); err == nil && info.ModTime().Before(cutoff) {
				os.Remove(filepath.Join(f.dir, name))
			}
		}
	}
}

// DropShard implements Backend: removes the shard's checkpoint and log
// files across all generations.
func (f *Flat) DropShard(shard string) error {
	base := FileBase(shard)
	entries, err := os.ReadDir(f.dir)
	if err != nil {
		return fmt.Errorf("storage: drop %s: %w", shard, err)
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, "ckpt-"+base+"-") || strings.HasPrefix(name, "wal-"+base+"-") {
			os.Remove(filepath.Join(f.dir, name))
		}
	}
	return nil
}

// Close implements Backend (the flat backend keeps no open handles).
func (f *Flat) Close() error { return nil }

// writeFileAtomic writes data via a temp file in the target directory,
// fsyncs it, and renames it into place — readers and crash recovery
// never observe a partially written file.
func writeFileAtomic(path string, data []byte) error {
	dir, base := filepath.Split(path)
	tmp, err := os.CreateTemp(dir, "."+base+".tmp-*")
	if err != nil {
		return fmt.Errorf("storage: write %s: %w", base, err)
	}
	_, werr := tmp.Write(data)
	if werr == nil {
		werr = tmp.Sync()
	}
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Chmod(tmp.Name(), 0o644)
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), path)
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("storage: write %s: %w", base, werr)
	}
	return nil
}

// syncDir fsyncs a directory so preceding renames in it survive a
// crash. Platforms that reject fsync on directories are tolerated.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("storage: sync %s: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) &&
		!errors.Is(err, syscall.ENOTSUP) && !errors.Is(err, os.ErrPermission) {
		return fmt.Errorf("storage: sync %s: %w", dir, err)
	}
	return nil
}
