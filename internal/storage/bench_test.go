package storage_test

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"provpriv/internal/storage"
)

func benchOpen(b testing.TB, backend, dir string) storage.Backend {
	b.Helper()
	var (
		bk  storage.Backend
		err error
	)
	switch backend {
	case "flat":
		bk, err = storage.OpenFlat(dir)
	case "kv":
		bk, err = storage.OpenKV(dir)
	default:
		b.Fatalf("unknown backend %q", backend)
	}
	if err != nil {
		b.Fatal(err)
	}
	return bk
}

func benchRecords(n, payload int) []storage.Record {
	recs := make([]storage.Record, n)
	data := make([]byte, payload)
	for i := range data {
		data[i] = byte('a' + i%26)
	}
	for i := range recs {
		recs[i] = storage.Record{Type: storage.RecExec, Key: fmt.Sprintf("exec-%06d", i), Data: data}
	}
	return recs
}

// seedLog writes and commits count log records, returning the extent.
func seedLog(tb testing.TB, bk storage.Backend, count int) uint64 {
	tb.Helper()
	if err := bk.WriteCheckpoint("bench", 1, nil); err != nil {
		tb.Fatal(err)
	}
	ln, err := bk.Append("bench", 1, 0, benchRecords(count, 256))
	if err != nil {
		tb.Fatal(err)
	}
	if err := bk.Commit(storage.Meta{Generation: 1, Shards: map[string]storage.ShardInfo{
		"bench": {Checkpoint: 1, LogLen: ln},
	}}); err != nil {
		tb.Fatal(err)
	}
	return ln
}

func benchmarkAppend(b *testing.B, backend string) {
	bk := benchOpen(b, backend, b.TempDir())
	defer bk.Close()
	if err := bk.WriteCheckpoint("bench", 1, nil); err != nil {
		b.Fatal(err)
	}
	recs := benchRecords(16, 256)
	var at uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		at, err = bk.Append("bench", 1, at, recs)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func benchmarkReplay(b *testing.B, backend string) {
	bk := benchOpen(b, backend, b.TempDir())
	defer bk.Close()
	ln := seedLog(b, bk, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var n int
		if err := bk.ReplayLog("bench", 1, ln, func(storage.Record) error { n++; return nil }); err != nil {
			b.Fatal(err)
		}
		if n != 2000 {
			b.Fatalf("replayed %d records", n)
		}
	}
}

func benchmarkCompact(b *testing.B, backend string) {
	// Compaction at the engine level = folding a log into a fresh
	// checkpoint at the next generation and committing it.
	bk := benchOpen(b, backend, b.TempDir())
	defer bk.Close()
	seedLog(b, bk, 2000)
	recs := benchRecords(2000, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen := uint64(i + 2)
		if err := bk.WriteCheckpoint("bench", gen, recs); err != nil {
			b.Fatal(err)
		}
		if err := bk.Commit(storage.Meta{Generation: gen, Shards: map[string]storage.ShardInfo{
			"bench": {Checkpoint: gen, Records: 2000},
		}}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFlatAppend(b *testing.B)  { benchmarkAppend(b, "flat") }
func BenchmarkKVAppend(b *testing.B)    { benchmarkAppend(b, "kv") }
func BenchmarkFlatReplay(b *testing.B)  { benchmarkReplay(b, "flat") }
func BenchmarkKVReplay(b *testing.B)    { benchmarkReplay(b, "kv") }
func BenchmarkFlatCompact(b *testing.B) { benchmarkCompact(b, "flat") }
func BenchmarkKVCompact(b *testing.B)   { benchmarkCompact(b, "kv") }

// TestBenchStorageJSON renders the storage benchmarks as a
// machine-readable JSON file for CI's perf trajectory. Gated on the
// BENCH_JSON env var naming the output path; a no-op otherwise.
func TestBenchStorageJSON(t *testing.T) {
	out := os.Getenv("BENCH_JSON")
	if out == "" {
		t.Skip("BENCH_JSON not set")
	}
	type entry struct {
		AppendRecsPerSec float64 `json:"append_records_per_sec"`
		ReplayMillis     float64 `json:"replay_2000_ms"`
		CompactMillis    float64 `json:"compact_2000_ms"`
	}
	report := make(map[string]entry)
	for _, backend := range []string{"flat", "kv"} {
		ap := testing.Benchmark(func(b *testing.B) { benchmarkAppend(b, backend) })
		rp := testing.Benchmark(func(b *testing.B) { benchmarkReplay(b, backend) })
		cp := testing.Benchmark(func(b *testing.B) { benchmarkCompact(b, backend) })
		report[backend] = entry{
			// benchmarkAppend writes 16 records per iteration.
			AppendRecsPerSec: 16 * float64(ap.N) / ap.T.Seconds(),
			ReplayMillis:     float64(rp.NsPerOp()) / 1e6,
			CompactMillis:    float64(cp.NsPerOp()) / 1e6,
		}
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %s", out, data)
}
