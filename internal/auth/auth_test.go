package auth

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestParseTokenFile(t *testing.T) {
	data := fmt.Sprintf(`# provpriv tokens
ci-reader:reader:public:%s

ci-writer:writer:analyst:%s
ops:admin:owner:%s
`, HashSecret("s-read"), HashSecret("s-write"), HashSecret("s-admin"))
	a, err := Parse([]byte(data))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	for _, tc := range []struct {
		secret string
		name   string
		user   string
		role   Role
	}{
		{"s-read", "ci-reader", "public", RoleReader},
		{"s-write", "ci-writer", "analyst", RoleWriter},
		{"s-admin", "ops", "owner", RoleAdmin},
	} {
		tok, ok := a.Authenticate(tc.secret)
		if !ok {
			t.Fatalf("secret %q rejected", tc.secret)
		}
		if tok.Name != tc.name || tok.User != tc.user || tok.Role != tc.role {
			t.Fatalf("token = %s/%s/%s, want %s/%s/%s",
				tok.Name, tok.User, tok.Role, tc.name, tc.user, tc.role)
		}
	}
	if _, ok := a.Authenticate("wrong"); ok {
		t.Fatal("bad secret accepted")
	}
	if _, ok := a.Authenticate(""); ok {
		t.Fatal("empty secret accepted")
	}
	if a.Failures() != 2 {
		t.Fatalf("failures = %d, want 2", a.Failures())
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	good := HashSecret("x")
	for _, bad := range []string{
		"",                           // no tokens at all
		"# only comments\n",          // likewise
		"one:two:three\n",            // missing field
		"a:b:c:d:e\n",                // extra field
		"t:emperor:u:" + good + "\n", // unknown role
		"t:reader:u:nothex\n",        // bad digest
		"t:reader:u:abcd\n",          // digest too short
		"t:reader:u:" + good + "\nt:reader:u:" + good + "\n", // duplicate name
		"t:reader::" + good + "\n",                           // empty user
	} {
		if _, err := Parse([]byte(bad)); err == nil {
			t.Errorf("Parse accepted %q", bad)
		}
	}
}

func TestRoleLadder(t *testing.T) {
	if !RoleAdmin.Allows(RoleReader) || !RoleAdmin.Allows(RoleWriter) || !RoleAdmin.Allows(RoleAdmin) {
		t.Fatal("admin must allow everything")
	}
	if !RoleWriter.Allows(RoleReader) || RoleWriter.Allows(RoleAdmin) {
		t.Fatal("writer allows reader but not admin")
	}
	if RoleReader.Allows(RoleWriter) {
		t.Fatal("reader must not write")
	}
	for _, s := range []string{"reader", "Writer", " ADMIN "} {
		if _, err := ParseRole(s); err != nil {
			t.Errorf("ParseRole(%q): %v", s, err)
		}
	}
	if _, err := ParseRole("root"); err == nil {
		t.Error("ParseRole accepted root")
	}
}

func TestPerTokenMetrics(t *testing.T) {
	a, err := New([]*Token{
		NewToken("a", "public", RoleReader, "sa"),
		NewToken("b", "owner", RoleAdmin, "sb"),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, ok := a.Authenticate("sa"); !ok {
			t.Fatal("sa rejected")
		}
	}
	if _, ok := a.Authenticate("sb"); !ok {
		t.Fatal("sb rejected")
	}
	a.Authenticate("nope")
	st := a.Stats()
	if len(st) != 2 || st[0].Name != "a" || st[1].Name != "b" {
		t.Fatalf("stats = %+v", st)
	}
	if st[0].Uses != 3 || st[1].Uses != 1 {
		t.Fatalf("uses = %d/%d, want 3/1", st[0].Uses, st[1].Uses)
	}
	if st[0].Role != "reader" || st[1].Role != "admin" {
		t.Fatalf("roles = %s/%s", st[0].Role, st[1].Role)
	}
	if a.Failures() != 1 {
		t.Fatalf("failures = %d", a.Failures())
	}
}

// TestConcurrentAuthenticate is a -race guard: the token set is shared
// by every request goroutine.
func TestConcurrentAuthenticate(t *testing.T) {
	a, _ := New([]*Token{NewToken("t", "u", RoleWriter, "secret")})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if g%2 == 0 {
					if _, ok := a.Authenticate("secret"); !ok {
						t.Error("valid secret rejected")
						return
					}
				} else {
					if _, ok := a.Authenticate("invalid"); ok {
						t.Error("invalid secret accepted")
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if got := a.Stats()[0].Uses; got != 4*50 {
		t.Fatalf("uses = %d, want 200", got)
	}
	if a.Failures() != 4*50 {
		t.Fatalf("failures = %d, want 200", a.Failures())
	}
}

func TestHashSecretFormat(t *testing.T) {
	h := HashSecret("abc")
	if len(h) != 64 || strings.ToLower(h) != h {
		t.Fatalf("digest %q not 64 lowercase hex chars", h)
	}
	// Known vector: sha256("abc").
	if h != "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad" {
		t.Fatalf("sha256(abc) = %s", h)
	}
}
