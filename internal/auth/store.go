// Token lifecycle: the Store wraps an Authenticator in an atomic
// pointer so the token set can be rotated while requests are in
// flight. Authenticate loads the current set lock-free; a reload,
// SIGHUP, or management-endpoint mutation builds the *next* set off to
// the side and swaps it in one pointer store. Tokens that survive a
// swap unchanged (same name, user, role and digest) are carried over
// by pointer, so their use counters keep counting and a request that
// authenticated a microsecond before the swap is indistinguishable
// from one a microsecond after — unchanged tokens never flap.
package auth

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Store is a hot-swappable token set. The zero Store is not usable;
// build one with NewStore or NewFileStore.
type Store struct {
	cur atomic.Pointer[Authenticator]

	// mu serializes mutations (Reload/Add/Remove and their file
	// writes); reads never take it.
	mu   sync.Mutex
	path string // token file, "" when the store is memory-only

	// File identity of the last load, so MaybeReload can skip the read
	// when nothing changed.
	mtime time.Time
	size  int64
}

// NewStore wraps an existing token set (tests; servers without a token
// file).
func NewStore(a *Authenticator) *Store {
	s := &Store{}
	s.cur.Store(a)
	return s
}

// NewFileStore loads path and remembers it for Reload/MaybeReload and
// for persisting management-endpoint mutations.
func NewFileStore(path string) (*Store, error) {
	a, err := LoadFile(path)
	if err != nil {
		return nil, err
	}
	s := NewStore(a)
	s.path = path
	if fi, err := os.Stat(path); err == nil {
		s.mtime, s.size = fi.ModTime(), fi.Size()
	}
	return s, nil
}

// Current returns the live token set. The pointer is stable for the
// caller's lifetime even across swaps — counters on it keep working
// because carried-over tokens are shared by pointer.
func (s *Store) Current() *Authenticator { return s.cur.Load() }

// Authenticate validates a secret against the live token set.
func (s *Store) Authenticate(secret string) (*Token, bool) {
	return s.cur.Load().Authenticate(secret)
}

// Failures sums authentication failures across all generations of the
// token set. Swaps carry the counter forward, so this is monotonic.
func (s *Store) Failures() int64 { return s.cur.Load().Failures() }

// Stats snapshots the live token set.
func (s *Store) Stats() []TokenStat { return s.cur.Load().Stats() }

// swap publishes next, carrying over per-token use counters (for
// tokens unchanged in name/user/role/digest) and the failure counter.
// Caller holds s.mu.
func (s *Store) swap(next *Authenticator) {
	old := s.cur.Load()
	if old != nil {
		byName := make(map[string]*Token, len(old.tokens))
		for _, t := range old.tokens {
			byName[t.Name] = t
		}
		for i, t := range next.tokens {
			if prev, ok := byName[t.Name]; ok &&
				prev.User == t.User && prev.Role == t.Role && prev.hash == t.hash {
				// Same credential: share the Token so in-flight
				// Authenticate results and counters stay coherent.
				next.tokens[i] = prev
			}
		}
		next.failures.Store(old.failures.Load())
	}
	s.cur.Store(next)
}

// Reload re-reads the token file and swaps the result in. Errors leave
// the current set untouched — a malformed edit can't lock everyone out.
func (s *Store) Reload() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reloadLocked()
}

func (s *Store) reloadLocked() error {
	if s.path == "" {
		return fmt.Errorf("auth: store has no token file to reload")
	}
	a, err := LoadFile(s.path)
	if err != nil {
		return err
	}
	if fi, err := os.Stat(s.path); err == nil {
		s.mtime, s.size = fi.ModTime(), fi.Size()
	}
	s.swap(a)
	return nil
}

// MaybeReload reloads only when the token file's mtime or size changed
// since the last load — the cheap poll for a watcher loop. Returns
// whether a reload happened.
func (s *Store) MaybeReload() (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.path == "" {
		return false, nil
	}
	fi, err := os.Stat(s.path)
	if err != nil {
		return false, fmt.Errorf("auth: %w", err)
	}
	if fi.ModTime().Equal(s.mtime) && fi.Size() == s.size {
		return false, nil
	}
	if err := s.reloadLocked(); err != nil {
		return false, err
	}
	return true, nil
}

var (
	// ErrTokenExists reports an Add with an already-registered name.
	ErrTokenExists = fmt.Errorf("auth: token name already exists")
	// ErrTokenNotFound reports a Remove of an unknown name.
	ErrTokenNotFound = fmt.Errorf("auth: token not found")
)

// Add registers a new token, persisting the token file when the store
// has one. The secret is hashed immediately and never stored.
func (s *Store) Add(name, user string, role Role, secret string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	old := s.cur.Load()
	tokens := make([]*Token, 0, len(old.tokens)+1)
	for _, t := range old.tokens {
		if t.Name == name {
			return fmt.Errorf("%w: %q", ErrTokenExists, name)
		}
		tokens = append(tokens, t)
	}
	tokens = append(tokens, NewToken(name, user, role, secret))
	next, err := New(tokens)
	if err != nil {
		return err
	}
	if err := s.persistLocked(tokens); err != nil {
		return err
	}
	s.swap(next)
	return nil
}

// Remove revokes a token by name: in-flight requests that already
// authenticated finish, the next request with that secret fails.
// The last token cannot be removed — an empty set would lock the
// admin out of the management surface itself.
func (s *Store) Remove(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	old := s.cur.Load()
	tokens := make([]*Token, 0, len(old.tokens))
	found := false
	for _, t := range old.tokens {
		if t.Name == name {
			found = true
			continue
		}
		tokens = append(tokens, t)
	}
	if !found {
		return fmt.Errorf("%w: %q", ErrTokenNotFound, name)
	}
	if len(tokens) == 0 {
		return fmt.Errorf("auth: refusing to remove the last token %q", name)
	}
	next, err := New(tokens)
	if err != nil {
		return err
	}
	if err := s.persistLocked(tokens); err != nil {
		return err
	}
	s.swap(next)
	return nil
}

// persistLocked rewrites the token file atomically (temp + rename) so
// a crash mid-write can't leave a torn file, then records the new file
// identity so the poller doesn't immediately re-reload our own write.
// No-op for memory-only stores.
func (s *Store) persistLocked(tokens []*Token) error {
	if s.path == "" {
		return nil
	}
	sorted := append([]*Token(nil), tokens...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	var b strings.Builder
	b.WriteString("# provserve token file — name:role:user:sha256hex\n")
	for _, t := range sorted {
		fmt.Fprintf(&b, "%s:%s:%s:%s\n", t.Name, t.Role, t.User, t.digest())
	}
	dir := filepath.Dir(s.path)
	tmp, err := os.CreateTemp(dir, ".tokens-*")
	if err != nil {
		return fmt.Errorf("auth: persist tokens: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName)
	if _, err := tmp.WriteString(b.String()); err != nil {
		tmp.Close()
		return fmt.Errorf("auth: persist tokens: %w", err)
	}
	if err := tmp.Chmod(0o600); err != nil {
		tmp.Close()
		return fmt.Errorf("auth: persist tokens: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("auth: persist tokens: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("auth: persist tokens: %w", err)
	}
	if err := os.Rename(tmpName, s.path); err != nil {
		return fmt.Errorf("auth: persist tokens: %w", err)
	}
	if fi, err := os.Stat(s.path); err == nil {
		s.mtime, s.size = fi.ModTime(), fi.Size()
	}
	return nil
}
