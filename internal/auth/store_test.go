package auth

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func writeTokenFile(t *testing.T, path string, lines ...string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o600); err != nil {
		t.Fatal(err)
	}
}

func tokenLine(name string, role Role, user, secret string) string {
	return fmt.Sprintf("%s:%s:%s:%s", name, role, user, HashSecret(secret))
}

func newTestFileStore(t *testing.T) (*Store, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "tokens")
	writeTokenFile(t, path,
		tokenLine("t-reader", RoleReader, "bob", "s-reader"),
		tokenLine("t-admin", RoleAdmin, "alice", "s-admin"),
	)
	s, err := NewFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	return s, path
}

// TestStoreSwapCarriesCounters: a reload that leaves a token unchanged
// must keep the token's use counter and the failure counter — rotation
// of one credential can't reset another's metrics.
func TestStoreSwapCarriesCounters(t *testing.T) {
	s, path := newTestFileStore(t)

	if _, ok := s.Authenticate("s-reader"); !ok {
		t.Fatal("reader secret rejected before reload")
	}
	if _, ok := s.Authenticate("bogus"); ok {
		t.Fatal("bogus secret accepted")
	}

	// Rotate the admin token, keep the reader token byte-identical.
	writeTokenFile(t, path,
		tokenLine("t-reader", RoleReader, "bob", "s-reader"),
		tokenLine("t-admin", RoleAdmin, "alice", "s-admin-2"),
	)
	if err := s.Reload(); err != nil {
		t.Fatal(err)
	}

	if _, ok := s.Authenticate("s-admin"); ok {
		t.Fatal("old admin secret still accepted after rotation")
	}
	tok, ok := s.Authenticate("s-admin-2")
	if !ok || tok.User != "alice" {
		t.Fatalf("rotated admin secret rejected (tok=%v ok=%v)", tok, ok)
	}
	if _, ok := s.Authenticate("s-reader"); !ok {
		t.Fatal("unchanged reader secret rejected after reload")
	}
	for _, st := range s.Stats() {
		if st.Name == "t-reader" && st.Uses != 2 {
			t.Fatalf("reader uses = %d after swap, want 2 (counter carried over)", st.Uses)
		}
	}
	// One pre-reload failure plus the rejected old admin secret.
	if f := s.Failures(); f != 2 {
		t.Fatalf("failures = %d, want 2 (carried across swap)", f)
	}
}

// TestStoreReloadErrorKeepsCurrent: a malformed token file must not
// take effect — the previous set keeps serving.
func TestStoreReloadErrorKeepsCurrent(t *testing.T) {
	s, path := newTestFileStore(t)
	if err := os.WriteFile(path, []byte("not:a:valid:file:too:many:fields\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := s.Reload(); err == nil {
		t.Fatal("Reload of malformed file succeeded")
	}
	if _, ok := s.Authenticate("s-reader"); !ok {
		t.Fatal("previous token set lost after failed reload")
	}
}

// TestStoreMaybeReload: no-op while the file is untouched, reloads on a
// content change.
func TestStoreMaybeReload(t *testing.T) {
	s, path := newTestFileStore(t)

	if reloaded, err := s.MaybeReload(); err != nil || reloaded {
		t.Fatalf("MaybeReload on untouched file = (%v, %v), want (false, nil)", reloaded, err)
	}

	writeTokenFile(t, path,
		tokenLine("t-reader", RoleReader, "bob", "s-reader"),
		tokenLine("t-admin", RoleAdmin, "alice", "s-admin"),
		tokenLine("t-new", RoleWriter, "carol", "s-new"),
	)
	// Coarse filesystems may keep the same mtime; size differs here, and
	// MaybeReload checks both.
	reloaded, err := s.MaybeReload()
	if err != nil || !reloaded {
		t.Fatalf("MaybeReload after edit = (%v, %v), want (true, nil)", reloaded, err)
	}
	if _, ok := s.Authenticate("s-new"); !ok {
		t.Fatal("token added via file edit not live after MaybeReload")
	}
}

// TestStoreAddRemovePersist: management mutations are durable — a fresh
// LoadFile of the persisted file sees the same set.
func TestStoreAddRemovePersist(t *testing.T) {
	s, path := newTestFileStore(t)

	if err := s.Add("t-ci", "carol", RoleWriter, "s-ci"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Authenticate("s-ci"); !ok {
		t.Fatal("added token not live")
	}
	if err := s.Add("t-ci", "dave", RoleReader, "other"); !errors.Is(err, ErrTokenExists) {
		t.Fatalf("duplicate Add error = %v, want ErrTokenExists", err)
	}

	a, err := LoadFile(path)
	if err != nil {
		t.Fatalf("persisted token file unreadable: %v", err)
	}
	if tok, ok := a.Authenticate("s-ci"); !ok || tok.User != "carol" || tok.Role != RoleWriter {
		t.Fatalf("added token lost on round-trip (tok=%v ok=%v)", tok, ok)
	}

	if err := s.Remove("t-ci"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Authenticate("s-ci"); ok {
		t.Fatal("removed token still authenticates")
	}
	if err := s.Remove("t-ci"); !errors.Is(err, ErrTokenNotFound) {
		t.Fatalf("Remove of unknown token error = %v, want ErrTokenNotFound", err)
	}
	if a, err := LoadFile(path); err != nil {
		t.Fatal(err)
	} else if _, ok := a.Authenticate("s-ci"); ok {
		t.Fatal("removal not persisted")
	}

	// Persisting our own write must not trip the poller.
	if reloaded, err := s.MaybeReload(); err != nil || reloaded {
		t.Fatalf("MaybeReload after own persist = (%v, %v), want (false, nil)", reloaded, err)
	}
}

// TestStoreRefusesRemovingLastToken: an empty token set would lock the
// admin out of the management surface.
func TestStoreRefusesRemovingLastToken(t *testing.T) {
	a, err := New([]*Token{NewToken("only", "alice", RoleAdmin, "s")})
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore(a)
	if err := s.Remove("only"); err == nil {
		t.Fatal("removing the last token succeeded")
	}
	if _, ok := s.Authenticate("s"); !ok {
		t.Fatal("last token no longer authenticates")
	}
}

// TestStoreConcurrentRotation (-race): authentication stays correct
// while the set is swapped underneath it — the unchanged token never
// spuriously fails, the rotating token only flips between its old and
// new secret.
func TestStoreConcurrentRotation(t *testing.T) {
	s, path := newTestFileStore(t)
	stop := make(chan struct{})
	var rotator, readers sync.WaitGroup

	rotator.Add(1)
	go func() { // rotator: flips the admin secret back and forth
		defer rotator.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			secret := "s-admin"
			if i%2 == 1 {
				secret = "s-admin-alt"
			}
			writeTokenFile(t, path,
				tokenLine("t-reader", RoleReader, "bob", "s-reader"),
				tokenLine("t-admin", RoleAdmin, "alice", secret),
			)
			if err := s.Reload(); err != nil {
				t.Errorf("reload: %v", err)
				return
			}
		}
	}()
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 500; i++ {
				if _, ok := s.Authenticate("s-reader"); !ok {
					t.Error("unchanged token failed during rotation")
					return
				}
				_, okOld := s.Authenticate("s-admin")
				_, okAlt := s.Authenticate("s-admin-alt")
				if okOld && okAlt {
					t.Error("both admin secrets valid at once")
					return
				}
			}
		}()
	}
	readers.Wait()
	close(stop)
	rotator.Wait()
}
