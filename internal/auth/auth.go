// Package auth implements bearer-token authentication for the HTTP
// provenance service: the "real authn story" the ROADMAP demands in
// front of the mutation surface. The PR 1 scheme — a trusted
// X-Prov-User header — is fine inside a private network but indefensible
// for a write path: any client naming an owner-level principal gets that
// principal's view, and with mutation endpoints it would get the
// repository's pen too.
//
// Design:
//
//   - A token is (name, repository user, role, SHA-256(secret)). The
//     server never stores or logs a secret; the token file carries only
//     the hex digest. Secrets MUST be high-entropy random strings
//     (generate them with NewSecret / `provserve -new-token`): a single
//     unsalted SHA-256 is preimage-resistant for a 128-bit random
//     secret, but a human-chosen password would fall to an offline
//     dictionary run if the file leaked. The loader refuses nothing
//     here — entropy is not observable from a digest — so the
//     generation tooling is the guard rail.
//   - Roles form a ladder — reader < writer < admin — gating the read
//     endpoints, the mutation endpoints, and the operational endpoints
//     (save) respectively. The repository user bound to the token still
//     decides the *privacy level* of reads: authn says who you are,
//     the privacy engine decides what you see.
//   - Authentication is a constant-time scan: the presented secret is
//     hashed once and compared against every registered token with
//     crypto/subtle, no early exit, so response timing reveals neither
//     whether a token exists nor how much of it matched.
//   - Per-token use counters (and a global failure counter) feed the
//     service's /stats and /metrics exposition.
//
// Token file format, one token per line:
//
//	# comment
//	name:role:user:sha256hex
//	ci-writer:writer:analyst:2bb80d537b1da3e38bd30361aa855686bde0eacd7162fef6a25fe97bf527a25b
//
// Generate a digest with `provserve -hash-secret` (reads the secret from
// stdin) or `printf %s "$SECRET" | sha256sum`.
package auth

import (
	"bufio"
	"bytes"
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/hex"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync/atomic"
)

// Role is a token's authorization tier. Higher roles include the lower
// ones (an admin can write, a writer can read).
type Role int

const (
	// RoleReader may call the read endpoints (search, query, reach,
	// provenance, specs, stats).
	RoleReader Role = iota
	// RoleWriter may additionally call the mutation endpoints (add
	// spec/execution, remove spec, update policy, set generalization).
	RoleWriter
	// RoleAdmin may additionally call the operational endpoints (save).
	RoleAdmin
)

// Allows reports whether the role grants everything required does.
func (r Role) Allows(required Role) bool { return r >= required }

func (r Role) String() string {
	switch r {
	case RoleReader:
		return "reader"
	case RoleWriter:
		return "writer"
	case RoleAdmin:
		return "admin"
	default:
		return fmt.Sprintf("role%d", int(r))
	}
}

// ParseRole parses "reader", "writer" or "admin".
func ParseRole(s string) (Role, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "reader":
		return RoleReader, nil
	case "writer":
		return RoleWriter, nil
	case "admin":
		return RoleAdmin, nil
	default:
		return 0, fmt.Errorf("auth: unknown role %q (want reader, writer or admin)", s)
	}
}

// Token is one registered credential. The secret itself is never held —
// only its SHA-256 digest.
type Token struct {
	// Name labels the token in metrics and logs (never secret).
	Name string
	// User is the repository principal the token authenticates as; read
	// endpoints evaluate at that user's privacy level.
	User string
	// Role is the token's authorization tier.
	Role Role

	hash [sha256.Size]byte
	uses atomic.Int64
}

// Uses returns how many requests the token has successfully
// authenticated.
func (t *Token) Uses() int64 { return t.uses.Load() }

// digest returns the hex-encoded secret digest — the token-file
// representation. Not exported: the only consumer is the Store's file
// writer.
func (t *Token) digest() string { return hex.EncodeToString(t.hash[:]) }

// TokenStat is one token's metrics snapshot (no secret material).
type TokenStat struct {
	Name string `json:"name"`
	User string `json:"user"`
	Role string `json:"role"`
	Uses int64  `json:"uses"`
}

// Authenticator validates bearer secrets against a fixed token set. The
// set is immutable after construction, so Authenticate is safe for
// arbitrary concurrency; counters are atomic.
type Authenticator struct {
	tokens   []*Token
	failures atomic.Int64
}

// HashSecret returns the hex SHA-256 digest of a secret — the third
// field of a token-file line.
func HashSecret(secret string) string {
	sum := sha256.Sum256([]byte(secret))
	return hex.EncodeToString(sum[:])
}

// NewSecret generates a fresh 256-bit random secret (hex-encoded) —
// the only kind of secret that makes the stored single-hash digest
// safe against offline guessing if the token file leaks.
func NewSecret() (string, error) {
	var buf [32]byte
	if _, err := rand.Read(buf[:]); err != nil {
		return "", fmt.Errorf("auth: generate secret: %w", err)
	}
	return hex.EncodeToString(buf[:]), nil
}

// New builds an authenticator from explicit tokens (mainly for tests;
// servers load a token file). Token names must be unique and non-empty.
func New(tokens []*Token) (*Authenticator, error) {
	seen := make(map[string]bool, len(tokens))
	for _, t := range tokens {
		if t.Name == "" || t.User == "" {
			return nil, fmt.Errorf("auth: token needs a name and a user: %+v", t.Name)
		}
		if seen[t.Name] {
			return nil, fmt.Errorf("auth: duplicate token name %q", t.Name)
		}
		seen[t.Name] = true
	}
	return &Authenticator{tokens: tokens}, nil
}

// NewToken constructs a token from a raw secret (tests and tooling; the
// file loader goes straight from the stored digest).
func NewToken(name, user string, role Role, secret string) *Token {
	t := &Token{Name: name, User: user, Role: role}
	t.hash = sha256.Sum256([]byte(secret))
	return t
}

// Parse reads a token file (see the package comment for the format).
func Parse(data []byte) (*Authenticator, error) {
	var tokens []*Token
	sc := bufio.NewScanner(bytes.NewReader(data))
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Split(text, ":")
		if len(fields) != 4 {
			return nil, fmt.Errorf("auth: line %d: want name:role:user:sha256hex, got %d fields", line, len(fields))
		}
		role, err := ParseRole(fields[1])
		if err != nil {
			return nil, fmt.Errorf("auth: line %d: %w", line, err)
		}
		digest, err := hex.DecodeString(strings.TrimSpace(fields[3]))
		if err != nil || len(digest) != sha256.Size {
			return nil, fmt.Errorf("auth: line %d: secret hash must be %d hex chars", line, sha256.Size*2)
		}
		t := &Token{Name: strings.TrimSpace(fields[0]), User: strings.TrimSpace(fields[2]), Role: role}
		copy(t.hash[:], digest)
		tokens = append(tokens, t)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("auth: read token file: %w", err)
	}
	if len(tokens) == 0 {
		return nil, fmt.Errorf("auth: token file defines no tokens")
	}
	return New(tokens)
}

// LoadFile reads and parses a token file from disk.
func LoadFile(path string) (*Authenticator, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("auth: %w", err)
	}
	a, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("auth: %s: %w", path, err)
	}
	return a, nil
}

// Authenticate validates a presented secret. The scan is constant-time
// over the whole token set: every stored digest is compared with
// crypto/subtle regardless of earlier matches, so timing leaks neither
// existence nor prefix length of any token. A failed attempt bumps the
// failure counter; a success bumps the matched token's use counter.
func (a *Authenticator) Authenticate(secret string) (*Token, bool) {
	sum := sha256.Sum256([]byte(secret))
	match := -1
	for i, t := range a.tokens {
		if subtle.ConstantTimeCompare(sum[:], t.hash[:]) == 1 {
			match = i
		}
	}
	if match < 0 {
		a.failures.Add(1)
		return nil, false
	}
	tok := a.tokens[match]
	tok.uses.Add(1)
	return tok, true
}

// Failures returns how many presented secrets matched no token.
func (a *Authenticator) Failures() int64 { return a.failures.Load() }

// Stats snapshots per-token metrics, sorted by token name.
func (a *Authenticator) Stats() []TokenStat {
	out := make([]TokenStat, 0, len(a.tokens))
	for _, t := range a.tokens {
		out = append(out, TokenStat{Name: t.Name, User: t.User, Role: t.Role.String(), Uses: t.Uses()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
