package a

import "context"

func fetch(ctx context.Context, id string) error {
	_ = ctx
	_ = id
	return nil
}

func plain(id string) error {
	_ = id
	return nil
}

func good(ctx context.Context, id string) error {
	return fetch(ctx, id)
}

// Compatibility wrappers take no context, so detaching is their job.
func wrapper(id string) error {
	return fetch(context.Background(), id)
}

func detach(ctx context.Context, id string) error {
	_ = ctx.Err()
	return fetch(context.Background(), id) // want "context.Background\\(\\) inside a function that receives a context.Context"
}

func todo(ctx context.Context, id string) error {
	_ = ctx.Err()
	return fetch(context.TODO(), id) // want "context.TODO\\(\\) inside a function that receives a context.Context"
}

func dropped(ctx context.Context, id string) error { // want "context parameter ctx is never used"
	return fetch(nil, id)
}

// No context-accepting callee: an unused ctx is interface conformance,
// not a dropped thread.
func conformance(ctx context.Context, id string) error {
	return plain(id)
}

// Closures capture the enclosing context; detaching inside one is
// still detaching.
func closure(ctx context.Context, id string) error {
	_ = ctx.Err()
	run := func() error {
		return fetch(context.Background(), id) // want "context.Background"
	}
	return run()
}

// A literal with its own context parameter is a fresh scope — checked
// on its own, not double-reported through the enclosing function.
func ownScope(ctx context.Context) func(context.Context) error {
	_ = ctx.Err()
	return func(inner context.Context) error {
		_ = inner.Err()
		return fetch(context.Background(), "x") // want "context.Background"
	}
}

func spawn(ctx context.Context, id string) error {
	_ = ctx
	go func() {
		//provlint:ignore ctxflow background job detaches deliberately
		_ = fetch(context.Background(), id)
	}()
	return nil
}
