// Package ctxflow enforces context threading on request paths.
//
// PR 7 threaded context.Context through the repository fan-out
// (SearchPageCtx, QueryAllPageCtx, ProvenanceWithCtx) so HTTP handlers
// could abort work when clients disconnect; the whole chain is only as
// good as its weakest link — one callee that quietly swaps in
// context.Background() detaches everything below it from cancellation
// and deadlines.
//
// Two checks, applied to every package:
//
//  1. detach: calling context.Background() or context.TODO() anywhere
//     inside a function that already receives a context.Context
//     (including closures defined in it, which capture the ctx) is
//     reported. Compatibility wrappers that do not take a context —
//     repo.Search delegating to SearchPageCtx — are untouched.
//     Deliberate detachment (a background task outliving the request)
//     uses //provlint:ignore ctxflow <reason>.
//  2. dropped: a named context parameter that is never used while the
//     body calls at least one context-accepting function means the
//     context was dropped on the floor; the callee runs uncancelable.
package ctxflow

import (
	"go/ast"
	"go/types"

	"provpriv/internal/analysis/lintkit"
)

var Analyzer = &lintkit.Analyzer{
	Name: "ctxflow",
	Doc: "functions receiving a context.Context must thread it: no context.Background()/TODO() " +
		"below the handler layer, and a ctx parameter must not be unused while ctx-accepting callees run detached",
	Run: run,
}

func run(pass *lintkit.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkFunc(pass, fn.Type, fn.Body)
				}
			case *ast.FuncLit:
				checkFunc(pass, fn.Type, fn.Body)
			}
			return true
		})
	}
	return nil
}

func isCtxType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// ctxParams returns the objects of all context.Context parameters.
func ctxParams(pass *lintkit.Pass, ft *ast.FuncType) []types.Object {
	var out []types.Object
	if ft.Params == nil {
		return nil
	}
	for _, field := range ft.Params.List {
		if !isCtxType(pass.TypesInfo.TypeOf(field.Type)) {
			continue
		}
		for _, name := range field.Names {
			if obj := pass.TypesInfo.Defs[name]; obj != nil {
				out = append(out, obj)
			}
		}
	}
	return out
}

func checkFunc(pass *lintkit.Pass, ft *ast.FuncType, body *ast.BlockStmt) {
	params := ctxParams(pass, ft)
	if len(params) == 0 {
		return
	}

	used := false
	callsCtxCallee := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			// A nested literal that declares its own context parameter
			// is a fresh scope, handled by its own checkFunc visit; one
			// that does not still captures ours, so keep walking.
			if len(ctxParams(pass, x.Type)) > 0 {
				return false
			}
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[x]; obj != nil {
				for _, p := range params {
					if obj == p {
						used = true
					}
				}
			}
		case *ast.CallExpr:
			if name := detachCall(pass, x); name != "" {
				pass.Reportf(x.Pos(), "context.%s() inside a function that receives a context.Context; thread the caller's ctx instead of detaching",
					name)
			}
			if sig := calleeSignature(pass, x); sig != nil && sig.Params().Len() > 0 && isCtxType(sig.Params().At(0).Type()) {
				callsCtxCallee = true
			}
		}
		return true
	})

	if !used && callsCtxCallee {
		for _, p := range params {
			if p.Name() == "_" || p.Name() == "" {
				continue
			}
			pass.Reportf(p.Pos(), "context parameter %s is never used, but the body calls context-accepting functions; thread it or rename it _ with a provlint:ignore",
				p.Name())
		}
	}
}

// detachCall reports "Background" or "TODO" when call is
// context.Background() / context.TODO(), else "".
func detachCall(pass *lintkit.Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "context" {
		return ""
	}
	if obj.Name() == "Background" || obj.Name() == "TODO" {
		return obj.Name()
	}
	return ""
}

func calleeSignature(pass *lintkit.Pass, call *ast.CallExpr) *types.Signature {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || tv.Type == nil {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}
