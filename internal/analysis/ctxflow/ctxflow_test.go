package ctxflow_test

import (
	"testing"

	"provpriv/internal/analysis/ctxflow"
	"provpriv/internal/analysis/lintkit/linttest"
)

func TestCtxFlow(t *testing.T) {
	linttest.Run(t, ctxflow.Analyzer, "a")
}
