// Package linttest is the fixture harness for provlint analyzers,
// mirroring golang.org/x/tools/go/analysis/analysistest: fixture
// packages live under testdata/src/<pkg>, and lines that should be
// flagged carry a trailing
//
//	// want "regexp"
//
// comment (several quoted regexps on one line expect several
// diagnostics). The harness type-checks the fixture, runs the analyzer
// through the real driver — so //provlint:ignore suppression behaves
// exactly as in cmd/provlint — and fails the test on any missing or
// unexpected diagnostic.
package linttest

import (
	"fmt"
	"go/ast"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"provpriv/internal/analysis/lintkit"
)

var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

// Run loads testdata/src/<pkg> relative to the calling test's package
// directory and checks the analyzer's diagnostics against the
// fixture's want comments.
func Run(t *testing.T, a *lintkit.Analyzer, pkg string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", pkg)
	loader := lintkit.NewLoader()
	p, err := loader.LoadDir(pkg, dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	findings, err := lintkit.Run([]*lintkit.Package{p}, []*lintkit.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	// file:line -> expectations parsed from want comments.
	wants := make(map[string][]*expectation)
	for _, f := range p.Files {
		collectWants(t, p, f, wants)
	}

	for _, fd := range findings {
		key := fmt.Sprintf("%q:%d", filepath.Base(fd.Position.Filename), fd.Position.Line)
		exps := wants[key]
		ok := false
		for _, e := range exps {
			if !e.matched && e.re.MatchString(fd.Message) {
				e.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s: unexpected diagnostic: %s (%s)", key, fd.Message, fd.Check)
		}
	}
	for key, exps := range wants {
		for _, e := range exps {
			if !e.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, e.re)
			}
		}
	}
}

func collectWants(t *testing.T, p *lintkit.Package, f *ast.File, wants map[string][]*expectation) {
	t.Helper()
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if !strings.HasPrefix(text, "want ") {
				continue
			}
			pos := p.Fset.Position(c.Pos())
			key := fmt.Sprintf("%q:%d", filepath.Base(pos.Filename), pos.Line)
			for _, m := range wantRE.FindAllStringSubmatch(text, -1) {
				// Unquote as a Go string first (analysistest semantics):
				// \\( in the comment is the regexp \( once unquoted.
				pat, err := strconv.Unquote(m[0])
				if err != nil {
					t.Fatalf("%s: bad want literal %s: %v", key, m[0], err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s: bad want regexp %q: %v", key, pat, err)
				}
				wants[key] = append(wants[key], &expectation{re: re})
			}
		}
	}
}
