package lintkit

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one parsed, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Name       string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// Loader parses and type-checks packages. One Loader shares a single
// FileSet and a single source importer across every package it loads,
// so each dependency (stdlib included — there is no export data in a
// hermetic source-only toolchain) is type-checked at most once per run.
type Loader struct {
	fset     *token.FileSet
	importer types.Importer
}

// NewLoader returns a Loader backed by the stdlib "source" importer,
// which resolves imports by type-checking their source — the only
// importer that works without precompiled export data or network
// access.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{fset: fset, importer: importer.ForCompiler(fset, "source", nil)}
}

// Fset exposes the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// LoadFiles parses the named files as one package and type-checks them
// under the given import path.
func (l *Loader) LoadFiles(importPath, dir string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(l.fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files for %s", importPath)
	}
	info := newInfo()
	conf := types.Config{Importer: l.importer}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Name:       tpkg.Name(),
		Dir:        dir,
		Fset:       l.fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// LoadDir loads every non-test .go file in dir as one package. Used by
// linttest to load analyzer fixtures.
func (l *Loader) LoadDir(importPath, dir string) (*Package, error) {
	pkgs, err := parser.ParseDir(l.fset, dir, nil, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, p := range pkgs {
		for name := range p.Files {
			// ParseDir keys by the joined path; LoadFiles re-joins.
			name = filepath.Base(name)
			if strings.HasSuffix(name, "_test.go") {
				continue
			}
			names = append(names, name)
		}
	}
	// ParseDir already filled the fset; re-parse by name for a stable
	// single-package file list.
	return l.LoadFiles(importPath, dir, dedupeSorted(names))
}

func dedupeSorted(in []string) []string {
	seen := make(map[string]bool, len(in))
	var out []string
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
}

// GoList enumerates the packages matching pattern (e.g. "./...") by
// shelling out to the go tool from moduleDir.
func GoList(moduleDir string, patterns ...string) ([]listedPackage, error) {
	args := append([]string{"list", "-json=Dir,ImportPath,Name,GoFiles"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = moduleDir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []listedPackage
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// LoadModule loads every package in the module under moduleDir matching
// the patterns. Only non-test files are analyzed: provlint pins
// production invariants; tests exercise deliberate violations (negative
// metric deltas, raced locks) on purpose.
func (l *Loader) LoadModule(moduleDir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := GoList(moduleDir, patterns...)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, lp := range listed {
		if len(lp.GoFiles) == 0 {
			continue
		}
		pkg, err := l.LoadFiles(lp.ImportPath, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}
