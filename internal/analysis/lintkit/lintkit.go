// Package lintkit is a minimal, dependency-free re-implementation of
// the golang.org/x/tools/go/analysis surface that provlint's analyzers
// are written against. The build environment for this module is
// hermetic (stdlib only), so instead of importing x/tools we mirror the
// small slice of its API the analyzers need: an Analyzer value with a
// Run function, a Pass carrying the type-checked package, and a
// Diagnostic report sink. Analyzers written here are deliberately
// source-compatible with go/analysis in shape, so a future PR that
// gains the real dependency can swap the import and delete this
// package without rewriting a check.
//
// The driver adds one repo-specific convention on top: the escape
// hatch comment
//
//	//provlint:ignore <check> <reason>
//
// placed on, or on the line directly above, a flagged line suppresses
// diagnostics from the named check ("all" suppresses every check). The
// reason is mandatory; an ignore without one is itself reported, so
// suppressions stay auditable.
package lintkit

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one invariant check. It mirrors
// golang.org/x/tools/go/analysis.Analyzer (Name, Doc, Run) minus the
// dependency-graph machinery provlint does not need.
type Analyzer struct {
	// Name is the check's identifier, used in diagnostics and in
	// //provlint:ignore comments. Lower-case, no spaces.
	Name string

	// Doc is a one-paragraph description: the invariant, and the bug
	// that motivated pinning it.
	Doc string

	// Run executes the check against one package and reports findings
	// via pass.Report.
	Run func(pass *Pass) error
}

// Pass carries one type-checked package through one analyzer, mirroring
// go/analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report records a diagnostic against this pass's package.
	Report func(Diagnostic)
}

// Reportf is the printf-style convenience over Report.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Finding is a resolved diagnostic: position translated through the
// file set and stamped with the analyzer that produced it. This is the
// unit cmd/provlint prints and the meta-test asserts is absent.
type Finding struct {
	Check    string
	Position token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Position, f.Message, f.Check)
}

// ignoreDirective is one parsed //provlint:ignore comment.
type ignoreDirective struct {
	check  string // analyzer name or "all"
	reason string // empty = malformed
	pos    token.Position
}

const ignorePrefix = "provlint:ignore"

// parseIgnores scans a file's comments for provlint:ignore directives.
func parseIgnores(fset *token.FileSet, file *ast.File) []ignoreDirective {
	var out []ignoreDirective
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, ignorePrefix) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
			d := ignoreDirective{pos: fset.Position(c.Pos())}
			if rest != "" {
				parts := strings.SplitN(rest, " ", 2)
				d.check = parts[0]
				if len(parts) == 2 {
					d.reason = strings.TrimSpace(parts[1])
				}
			}
			out = append(out, d)
		}
	}
	return out
}

// Run executes every analyzer over every package, resolves positions,
// applies //provlint:ignore suppression and returns the surviving
// findings sorted by position. Malformed ignores (no check name or no
// reason) are returned as findings from the pseudo-check
// "ignore-syntax" so they cannot silently rot.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		// index of "file:line" -> set of suppressed check names.
		suppressed := make(map[string]map[string]bool)
		for _, file := range pkg.Files {
			for _, d := range parseIgnores(pkg.Fset, file) {
				if d.check == "" || d.reason == "" {
					findings = append(findings, Finding{
						Check:    "ignore-syntax",
						Position: d.pos,
						Message:  "malformed provlint:ignore: want //provlint:ignore <check> <reason>",
					})
					continue
				}
				key := fmt.Sprintf("%q:%d", d.pos.Filename, d.pos.Line)
				if suppressed[key] == nil {
					suppressed[key] = make(map[string]bool)
				}
				suppressed[key][d.check] = true
			}
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			pass.Report = func(d Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				// An ignore on the flagged line, or on the line directly
				// above it, suppresses the diagnostic.
				for _, line := range []int{pos.Line, pos.Line - 1} {
					key := fmt.Sprintf("%q:%d", pos.Filename, line)
					if s := suppressed[key]; s != nil && (s[a.Name] || s["all"]) {
						return
					}
				}
				findings = append(findings, Finding{Check: a.Name, Position: pos, Message: d.Message})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
	}
	SortFindings(findings)
	return findings, nil
}

// SortFindings orders findings by position then check name.
func SortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Position, findings[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return findings[i].Check < findings[j].Check
	})
}

// WalkStack walks every file's AST invoking fn with each node and the
// stack of its ancestors (outermost first, not including the node
// itself). Analyzers use it where go/analysis code would reach for
// inspector.WithStack.
func WalkStack(files []*ast.File, fn func(n ast.Node, stack []ast.Node)) {
	for _, f := range files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			fn(n, stack)
			stack = append(stack, n)
			return true
		})
	}
}
