package lintkit_test

import (
	"go/ast"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"provpriv/internal/analysis/lintkit"
)

// flagBad reports every call to a function named bad — a minimal
// analyzer for exercising the driver's suppression mechanics.
var flagBad = &lintkit.Analyzer{
	Name: "testcheck",
	Doc:  "flags calls to bad()",
	Run: func(pass *lintkit.Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "bad" {
						pass.Reportf(call.Pos(), "call to bad")
					}
				}
				return true
			})
		}
		return nil
	},
}

const ignoreFixture = `package p

func bad() {}

func f() {
	bad() // line 6: flagged
	bad() //provlint:ignore testcheck same-line suppression with a reason
	//provlint:ignore testcheck line-above suppression with a reason
	bad()
	//provlint:ignore all blanket suppression with a reason
	bad()
	//provlint:ignore testcheck
	bad() // line 13: ignore above is malformed (no reason), so still flagged
	//provlint:ignore othercheck reason names a different check
	bad() // line 15: flagged
}
`

func TestIgnoreDirectives(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(ignoreFixture), 0o644); err != nil {
		t.Fatal(err)
	}
	loader := lintkit.NewLoader()
	pkg, err := loader.LoadDir("p", dir)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := lintkit.Run([]*lintkit.Package{pkg}, []*lintkit.Analyzer{flagBad})
	if err != nil {
		t.Fatal(err)
	}

	type want struct {
		line  int
		check string
	}
	wants := []want{
		{6, "testcheck"},
		{12, "ignore-syntax"}, // the malformed directive itself
		{13, "testcheck"},     // ...which therefore suppresses nothing
		{15, "testcheck"},     // ignore for a different check
	}
	if len(findings) != len(wants) {
		for _, f := range findings {
			t.Logf("finding: %s", f)
		}
		t.Fatalf("got %d findings, want %d", len(findings), len(wants))
	}
	for i, w := range wants {
		f := findings[i]
		if f.Position.Line != w.line || f.Check != w.check {
			t.Errorf("finding %d = line %d check %s, want line %d check %s",
				i, f.Position.Line, f.Check, w.line, w.check)
		}
	}
}

// TestFindingString pins the vet-style file:line:col rendering CI greps.
func TestFindingString(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte("package p\n\nfunc bad() {}\n\nfunc g() { bad() }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	loader := lintkit.NewLoader()
	pkg, err := loader.LoadDir("p", dir)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := lintkit.Run([]*lintkit.Package{pkg}, []*lintkit.Analyzer{flagBad})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1", len(findings))
	}
	s := findings[0].String()
	if !strings.HasSuffix(s, "p.go:5:12: call to bad (testcheck)") {
		t.Errorf("unexpected rendering %q", s)
	}
}
