// Package analysis assembles provlint's analyzer suite: the
// mechanically enforced versions of the concurrency, metrics, privacy
// and protocol contracts this repository has already been burned by.
// Each analyzer's Doc names the invariant; the README's "Static
// analysis & invariants" table maps each one to the PR and bug that
// motivated it.
//
// cmd/provlint drives the suite over ./... in CI; TestProvlintCleanTree
// drives it in-process so a regression fails `go test ./...` too.
package analysis

import (
	"time"

	"provpriv/internal/analysis/cachekey"
	"provpriv/internal/analysis/ctxflow"
	"provpriv/internal/analysis/envelope"
	"provpriv/internal/analysis/lintkit"
	"provpriv/internal/analysis/lockorder"
	"provpriv/internal/analysis/monotonic"
)

// Suite is every provlint analyzer, in report order.
var Suite = []*lintkit.Analyzer{
	lockorder.Analyzer,
	monotonic.Analyzer,
	ctxflow.Analyzer,
	cachekey.Analyzer,
	envelope.Analyzer,
}

// Timing is one analyzer's wall time over a package set.
type Timing struct {
	Check  string        `json:"check"`
	Wall   time.Duration `json:"-"`
	WallMS float64       `json:"wall_ms"`
}

// Result is one full suite run: surviving findings plus per-analyzer
// and load cost, the numbers BENCH_lint.json tracks.
type Result struct {
	Findings []lintkit.Finding
	Packages int
	LoadWall time.Duration
	Timings  []Timing
}

// RunTree loads every package matching the patterns under moduleDir
// and runs the suite. Analyzers are timed individually (the repeated
// ignore-comment scan is noise next to type-checking cost).
func RunTree(moduleDir string, patterns ...string) (*Result, error) {
	loader := lintkit.NewLoader()
	start := time.Now()
	pkgs, err := loader.LoadModule(moduleDir, patterns...)
	if err != nil {
		return nil, err
	}
	res := &Result{Packages: len(pkgs), LoadWall: time.Since(start)}
	// Each per-analyzer Run re-scans ignore comments and re-reports any
	// malformed ones; keep one copy per position.
	seenIgnoreSyntax := make(map[string]bool)
	for _, a := range Suite {
		t0 := time.Now()
		findings, err := lintkit.Run(pkgs, []*lintkit.Analyzer{a})
		if err != nil {
			return nil, err
		}
		wall := time.Since(t0)
		res.Timings = append(res.Timings, Timing{Check: a.Name, Wall: wall, WallMS: float64(wall.Nanoseconds()) / 1e6})
		for _, f := range findings {
			if f.Check == "ignore-syntax" {
				key := f.Position.String()
				if seenIgnoreSyntax[key] {
					continue
				}
				seenIgnoreSyntax[key] = true
			}
			res.Findings = append(res.Findings, f)
		}
	}
	lintkit.SortFindings(res.Findings)
	return res, nil
}
