package a

import "sync/atomic"

type stats struct {
	hits  atomic.Int64 //provlint:counter
	gauge atomic.Int64 // unmarked: free to move both ways

	// plain is a non-atomic counter guarded elsewhere.
	//provlint:counter
	plain int64

	buckets [4]atomic.Int64 //provlint:counter
}

func (s *stats) allowed(n int64) {
	s.hits.Add(1)
	if n >= 0 {
		s.hits.Add(n) // runtime-checked non-negative deltas pass
	}
	s.gauge.Store(5)
	s.gauge.Add(-1)
	s.plain++
	s.plain += 2
	s.buckets[2].Add(1)
}

func (s *stats) violations(n int64) {
	s.hits.Store(3)             // want "Store on monotone counter s.hits"
	s.hits.Add(-1)              // want "Add of negative delta -1 on monotone counter s.hits"
	s.hits.Add(-n)              // want "Add of negated value on monotone counter s.hits"
	s.hits.Swap(0)              // want "Swap on monotone counter s.hits"
	s.hits.CompareAndSwap(0, 1) // want "CompareAndSwap on monotone counter s.hits"
	s.buckets[1].Store(2)       // want "Store on monotone counter"
	s.plain = 9                 // want "direct assignment to monotone counter s.plain"
	s.plain -= 2                // want "subtraction from monotone counter s.plain"
	s.plain--                   // want "decrement of monotone counter s.plain"
	s.plain += -3               // want "negative increment of monotone counter s.plain"
}

func (s *stats) annotatedReset() {
	//provlint:ignore monotonic deterministic-harness reset, never runs in production
	s.hits.Store(0)
}
