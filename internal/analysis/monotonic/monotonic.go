// Package monotonic guards the counters behind the /metrics *_total
// series. The exposition contract (enforced at runtime by
// obs.ValidateExposition and the server monotonicity test) is that a
// _total series never decreases; PR 2's review found counters that
// reset when an LRU was swapped out or a shard removed, and the fix —
// banked *Base fields that only ever absorb final values — works only
// if every future write site keeps the discipline.
//
// The check is declaration-driven: a struct field whose doc or line
// comment contains the marker
//
//	provlint:counter
//
// is a monotone counter. Marked fields may only be written through
// atomic Add with a provably non-negative delta. Store, Swap,
// CompareAndSwap, direct assignment, -=, -- and Add of a negative or
// negated value are reported. Gauges (in-flight counts, sampling
// knobs) simply carry no marker.
package monotonic

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"provpriv/internal/analysis/lintkit"
)

const marker = "provlint:counter"

var Analyzer = &lintkit.Analyzer{
	Name: "monotonic",
	Doc: "fields marked provlint:counter feed monotone /metrics *_total series and may only be " +
		"atomic.Add-ed with non-negative deltas — never Stored, Swapped, assigned or decremented",
	Run: run,
}

func run(pass *lintkit.Pass) error {
	counters := markedFields(pass)
	if len(counters) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, counters, x)
			case *ast.AssignStmt:
				checkAssign(pass, counters, x)
			case *ast.IncDecStmt:
				if isCounterExpr(pass, counters, x.X) && x.Tok.String() == "--" {
					pass.Reportf(x.Pos(), "decrement of monotone counter %s", types.ExprString(x.X))
				}
			}
			return true
		})
	}
	return nil
}

// markedFields collects the field objects whose declarations carry the
// provlint:counter marker.
func markedFields(pass *lintkit.Pass) map[types.Object]bool {
	out := make(map[types.Object]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if !hasMarker(field.Doc) && !hasMarker(field.Comment) {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						out[obj] = true
					}
				}
			}
			return true
		})
	}
	return out
}

func hasMarker(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	return strings.Contains(cg.Text(), marker) || strings.Contains(rawText(cg), marker)
}

// rawText preserves directive-style comments (//provlint:counter)
// that CommentGroup.Text strips.
func rawText(cg *ast.CommentGroup) string {
	var b strings.Builder
	for _, c := range cg.List {
		b.WriteString(c.Text)
		b.WriteByte('\n')
	}
	return b.String()
}

// isCounterExpr reports whether expr selects a marked counter field,
// seeing through indexing (h.counts[i] on a bucket array).
func isCounterExpr(pass *lintkit.Pass, counters map[types.Object]bool, expr ast.Expr) bool {
	if idx, ok := ast.Unparen(expr).(*ast.IndexExpr); ok {
		expr = idx.X
	}
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if s, ok := pass.TypesInfo.Selections[sel]; ok {
		return counters[s.Obj()]
	}
	return counters[pass.TypesInfo.Uses[sel.Sel]]
}

func checkCall(pass *lintkit.Pass, counters map[types.Object]bool, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !isCounterExpr(pass, counters, sel.X) {
		return
	}
	name := types.ExprString(sel.X)
	switch sel.Sel.Name {
	case "Store", "Swap", "CompareAndSwap":
		pass.Reportf(call.Pos(), "%s on monotone counter %s; counters feeding *_total series may only grow via Add with a non-negative delta",
			sel.Sel.Name, name)
	case "Add":
		if len(call.Args) != 1 {
			return
		}
		arg := call.Args[0]
		if tv, ok := pass.TypesInfo.Types[arg]; ok && tv.Value != nil {
			if constant.Sign(tv.Value) < 0 {
				pass.Reportf(call.Pos(), "Add of negative delta %s on monotone counter %s", tv.Value, name)
			}
			return
		}
		if u, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && u.Op.String() == "-" {
			pass.Reportf(call.Pos(), "Add of negated value on monotone counter %s", name)
		}
	}
}

func checkAssign(pass *lintkit.Pass, counters map[types.Object]bool, as *ast.AssignStmt) {
	for i, lhs := range as.Lhs {
		if !isCounterExpr(pass, counters, lhs) {
			continue
		}
		name := types.ExprString(lhs)
		switch as.Tok.String() {
		case "=":
			pass.Reportf(as.Pos(), "direct assignment to monotone counter %s; use atomic Add", name)
		case "-=":
			pass.Reportf(as.Pos(), "subtraction from monotone counter %s", name)
		case "+=":
			if i < len(as.Rhs) {
				if tv, ok := pass.TypesInfo.Types[as.Rhs[i]]; ok && tv.Value != nil && constant.Sign(tv.Value) < 0 {
					pass.Reportf(as.Pos(), "negative increment of monotone counter %s", name)
				}
			}
		}
	}
}
