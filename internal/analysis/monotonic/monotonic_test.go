package monotonic_test

import (
	"testing"

	"provpriv/internal/analysis/lintkit/linttest"
	"provpriv/internal/analysis/monotonic"
)

func TestMonotonic(t *testing.T) {
	linttest.Run(t, monotonic.Analyzer, "a")
}
