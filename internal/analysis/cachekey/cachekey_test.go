package cachekey_test

import (
	"testing"

	"provpriv/internal/analysis/cachekey"
	"provpriv/internal/analysis/lintkit/linttest"
)

func TestCacheKey(t *testing.T) {
	linttest.Run(t, cachekey.Analyzer, "a")
}
