// Package cachekey enforces %q-quoting of wire-writable values
// interpolated into cache and singleflight keys.
//
// PR 5's review found that composite keys like
// "masked|"+specID+"|"+execID let a client-chosen ID containing the
// separator collide two shards' singleflight fills — one request's
// masked snapshot served under another's key. The fix quoted every
// interpolated ID with %q; this check makes the quoting mechanical.
//
// A fmt.Sprintf call is in key context when its result is assigned to
// a variable whose name contains "key", or when it is passed directly
// to a Do/Get/Put/Forget-style cache or singleflight method. In key
// context, a %s or %v verb whose argument is string-typed is reported
// (ints and enums are collision-safe; strings are the wire-writable
// surface). Building a key by concatenating unquoted string values is
// reported for the same reason.
package cachekey

import (
	"go/ast"
	"go/types"
	"strings"

	"provpriv/internal/analysis/lintkit"
)

var Analyzer = &lintkit.Analyzer{
	Name: "cachekey",
	Doc: "string values interpolated into cache/singleflight keys must be %q-quoted so IDs " +
		"containing the separator cannot collide two entries",
	Run: run,
}

// keyMethods are callee names whose string arguments are cache or
// singleflight keys.
var keyMethods = map[string]bool{
	"Do": true, "Get": true, "Put": true, "Forget": true, "Delete": true,
}

func run(pass *lintkit.Pass) error {
	lintkit.WalkStack(pass.Files, func(n ast.Node, stack []ast.Node) {
		switch x := n.(type) {
		case *ast.CallExpr:
			if isSprintf(pass, x) && inKeyContext(stack, x) {
				checkFormat(pass, x)
			}
		case *ast.AssignStmt:
			checkConcat(pass, x)
		}
	})
	return nil
}

func isSprintf(pass *lintkit.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" && obj.Name() == "Sprintf"
}

// inKeyContext walks outward from the Sprintf call: assigned to a
// *key*-named variable, or passed straight into a key-taking method.
func inKeyContext(stack []ast.Node, call *ast.CallExpr) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.ParenExpr:
			continue
		case *ast.AssignStmt:
			for _, lhs := range p.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && strings.Contains(strings.ToLower(id.Name), "key") {
					return true
				}
			}
			return false
		case *ast.ValueSpec:
			for _, name := range p.Names {
				if strings.Contains(strings.ToLower(name.Name), "key") {
					return true
				}
			}
			return false
		case *ast.CallExpr:
			if sel, ok := p.Fun.(*ast.SelectorExpr); ok && keyMethods[sel.Sel.Name] {
				for _, arg := range p.Args {
					if arg == call {
						return true
					}
				}
			}
			return false
		default:
			return false
		}
	}
	return false
}

// checkFormat parses the constant format string and reports %s/%v
// verbs whose argument is string-typed.
func checkFormat(pass *lintkit.Pass, call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil {
		return
	}
	format := tv.Value.String()
	if len(format) >= 2 && format[0] == '"' {
		format = format[1 : len(format)-1]
	}
	argIdx := 1
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		// flags, width, precision; '*' consumes an argument.
		for i < len(format) && strings.ContainsRune("+-# 0123456789.*", rune(format[i])) {
			if format[i] == '*' {
				argIdx++
			}
			i++
		}
		if i >= len(format) {
			break
		}
		verb := format[i]
		if verb == '%' {
			continue
		}
		if argIdx >= len(call.Args) {
			break
		}
		arg := call.Args[argIdx]
		argIdx++
		if verb != 's' && verb != 'v' {
			continue
		}
		if isStringType(pass.TypesInfo.TypeOf(arg)) {
			pass.Reportf(arg.Pos(), "unquoted string interpolated into cache/singleflight key with %%%c; use %%q so a value containing the separator cannot collide keys",
				verb)
		}
	}
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

// checkConcat reports key-named assignments built by concatenating
// non-constant, non-strconv.Quote string operands.
func checkConcat(pass *lintkit.Pass, as *ast.AssignStmt) {
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || !strings.Contains(strings.ToLower(id.Name), "key") {
			continue
		}
		if i >= len(as.Rhs) {
			break
		}
		bin, ok := ast.Unparen(as.Rhs[i]).(*ast.BinaryExpr)
		if !ok || bin.Op.String() != "+" {
			continue
		}
		for _, op := range concatOperands(bin) {
			if tv, ok := pass.TypesInfo.Types[op]; ok && tv.Value != nil {
				continue // literal separators are fine
			}
			if isQuoteCall(pass, op) {
				continue
			}
			if isStringType(pass.TypesInfo.TypeOf(op)) {
				pass.Reportf(op.Pos(), "cache key built by concatenating an unquoted value; use fmt.Sprintf with %%q (or strconv.Quote)")
			}
		}
	}
}

func concatOperands(bin *ast.BinaryExpr) []ast.Expr {
	var out []ast.Expr
	var walk func(e ast.Expr)
	walk = func(e ast.Expr) {
		if b, ok := ast.Unparen(e).(*ast.BinaryExpr); ok && b.Op.String() == "+" {
			walk(b.X)
			walk(b.Y)
			return
		}
		out = append(out, e)
	}
	walk(bin)
	return out
}

func isQuoteCall(pass *lintkit.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() {
	case "strconv":
		return obj.Name() == "Quote"
	case "fmt":
		return obj.Name() == "Sprintf"
	}
	return false
}
