package a

import (
	"fmt"
	"strconv"
)

type group struct{}

func (g *group) Do(key string, fn func() (any, error)) (any, error) {
	_ = key
	_ = fn
	return nil, nil
}

type cache struct{}

func (c *cache) Get(group, key string) (any, bool) {
	_, _ = group, key
	return nil, false
}

func (c *cache) Put(group, key string, v any) {
	_, _, _ = group, key, v
}

func quoted(g *group, c *cache, spec, exec string, level int) {
	_, _ = g.Do(fmt.Sprintf("masked|%q|%q|%d", spec, exec, level), nil)
	key := fmt.Sprintf("view|%q|%d", spec, level)
	c.Put("views", key, 1)
}

func unquoted(g *group, c *cache, spec, exec string) {
	_, _ = g.Do(fmt.Sprintf("masked|%s|%q", spec, exec), nil) // want "unquoted string interpolated into cache/singleflight key with %s"
	cacheKey := fmt.Sprintf("search|%v|%d", spec, 1)          // want "unquoted string interpolated into cache/singleflight key with %v"
	c.Put("results", fmt.Sprintf("r|%s", exec), 1)            // want "unquoted string"
	_ = cacheKey
}

// Non-key formatting is out of scope: error text interpolates freely.
func message(spec string) string {
	return fmt.Sprintf("spec %s not found", spec)
}

// Integers cannot contain the separator; %v on them is fine.
func intKey(level int, spec string) string {
	key := fmt.Sprintf("taint|%v|%q", level, spec)
	return key
}

func concatenated(spec, exec string) string {
	key := spec + "|" + exec // want "concatenating an unquoted value" "concatenating an unquoted value"
	return key
}

// strconv.Quote (or a nested quoted Sprintf) makes concatenation safe.
func quotedConcat(spec string) string {
	key := "view|" + strconv.Quote(spec)
	return key
}

func annotated(name, labels string) string {
	//provlint:ignore cachekey series identity is the canonical exposition form, not wire-writable
	seriesKey := name + "{" + labels + "}"
	return seriesKey
}
