package analysis_test

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"strings"
	"testing"

	"provpriv/internal/analysis"
)

// moduleRoot resolves the repository root through the go tool, so the
// meta-test works from any package directory or test binary cwd.
func moduleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
	if err != nil {
		t.Fatalf("go list -m: %v", err)
	}
	return strings.TrimSpace(string(bytes.ToValidUTF8(out, nil)))
}

// TestProvlintCleanTree runs the full analyzer suite over the real
// repository in-process and requires zero findings — the same gate
// cmd/provlint enforces in CI, but wired into `go test ./...` so an
// invariant regression fails the ordinary test run too, not just the
// lint job.
func TestProvlintCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole tree; skipped in -short")
	}
	res, err := analysis.RunTree(moduleRoot(t))
	if err != nil {
		t.Fatalf("provlint run failed: %v", err)
	}
	if res.Packages == 0 {
		t.Fatal("loaded zero packages — pattern or loader regression")
	}
	for _, f := range res.Findings {
		t.Errorf("provlint: %s", f)
	}
	if len(res.Findings) > 0 {
		t.Log("fix the violation or add //provlint:ignore <check> <reason> with a justification")
	}
}

// TestBenchLintJSON renders analyzer wall times as machine-readable
// JSON for CI's perf-trajectory artifact, same contract as the
// storage/tasks/obs/limits bench tests. Gated on BENCH_JSON naming the
// output path; a no-op otherwise.
func TestBenchLintJSON(t *testing.T) {
	out := os.Getenv("BENCH_JSON")
	if out == "" {
		t.Skip("BENCH_JSON not set")
	}
	res, err := analysis.RunTree(moduleRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	report := map[string]any{
		"packages":     res.Packages,
		"load_wall_ms": float64(res.LoadWall.Nanoseconds()) / 1e6,
		"checks":       res.Timings,
		"findings":     len(res.Findings),
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %s", out, data)
}
