package envelope_test

import (
	"testing"

	"provpriv/internal/analysis/envelope"
	"provpriv/internal/analysis/lintkit/linttest"
)

func TestEnvelope(t *testing.T) {
	linttest.Run(t, envelope.Analyzer, "server")
}

// TestOtherPackagesExempt pins the gate: the envelope contract binds
// internal/server only; other packages write headers freely (obs
// middleware, stdlib-style helpers).
func TestOtherPackagesExempt(t *testing.T) {
	linttest.Run(t, envelope.Analyzer, "other")
}
