package other

import "net/http"

// A non-"server" package writing raw statuses is out of the envelope
// contract's scope: no diagnostics expected anywhere in this file.
func raw(w http.ResponseWriter, r *http.Request) {
	http.NotFound(w, r)
	w.WriteHeader(http.StatusInternalServerError)
}
