package server

import (
	"encoding/json"
	"net/http"
)

type errorBody struct {
	Error string `json:"error"`
}

type Server struct{}

// writeJSON is the envelope writer; its own WriteHeader is the one
// sanctioned call site.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) good(w http.ResponseWriter) {
	s.writeJSON(w, http.StatusNotFound, errorBody{Error: "not found"})
}

func (s *Server) bad(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "nope", http.StatusBadRequest)  // want "http.Error writes a text/plain error outside the JSON envelope"
	http.NotFound(w, r)                           // want "http.NotFound writes a text/plain error outside the JSON envelope"
	w.WriteHeader(http.StatusInternalServerError) // want "naked WriteHeader bypasses the uniform JSON error envelope"
}

func (s *Server) badInClosure(w http.ResponseWriter) {
	fail := func() {
		w.WriteHeader(http.StatusTeapot) // want "naked WriteHeader"
	}
	fail()
}

// statusRecorder is a ResponseWriter wrapper; its forwarding
// WriteHeader is allowed.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.status = code
	sr.ResponseWriter.WriteHeader(code)
}

func (s *Server) camouflage(w http.ResponseWriter, r *http.Request) {
	//provlint:ignore envelope must byte-match the mux default 404 for a hidden surface
	http.NotFound(w, r)
}
