// Package envelope keeps HTTP error responses on the uniform JSON
// envelope.
//
// Every failure leaving internal/server is a JSON errorBody carrying
// the error text and the request id (PR 8), written via
// Server.writeJSON / Server.fail — that shape is load-bearing: clients
// parse it, the e2e smoke test asserts it, and audit outcomes are
// derived from the status it carries. A stray http.Error or naked
// WriteHeader silently forks the protocol (text/plain body, no
// request id, no envelope).
//
// The check applies to packages named "server": calls to http.Error /
// http.NotFound are reported, as is any direct WriteHeader call
// outside the envelope writer itself (writeJSON) or a
// ResponseWriter-wrapper method that is itself named WriteHeader
// (e.g. the audit status recorder forwarding to the wrapped writer).
package envelope

import (
	"go/ast"

	"provpriv/internal/analysis/lintkit"
)

var Analyzer = &lintkit.Analyzer{
	Name: "envelope",
	Doc: "server handlers must emit errors through the uniform JSON envelope helpers " +
		"(writeJSON/fail), never http.Error, http.NotFound or a naked WriteHeader",
	Run: run,
}

func run(pass *lintkit.Pass) error {
	if pass.Pkg.Name() != "server" {
		return nil
	}
	lintkit.WalkStack(pass.Files, func(n ast.Node, stack []ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return
		}
		if obj := pass.TypesInfo.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "net/http" {
			switch obj.Name() {
			case "Error", "NotFound":
				pass.Reportf(call.Pos(), "http.%s writes a text/plain error outside the JSON envelope; use s.fail or s.writeJSON",
					obj.Name())
				return
			}
		}
		if sel.Sel.Name == "WriteHeader" && len(call.Args) == 1 && !allowedWriter(stack) {
			pass.Reportf(call.Pos(), "naked WriteHeader bypasses the uniform JSON error envelope; use s.writeJSON or s.fail")
		}
	})
	return nil
}

// allowedWriter reports whether the enclosing function is the envelope
// writer itself or a ResponseWriter wrapper forwarding WriteHeader.
func allowedWriter(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Name.Name == "writeJSON" || fn.Name.Name == "WriteHeader"
		case *ast.FuncLit:
			return false
		}
	}
	return false
}
