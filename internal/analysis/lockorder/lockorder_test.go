package lockorder_test

import (
	"testing"

	"provpriv/internal/analysis/lintkit/linttest"
	"provpriv/internal/analysis/lockorder"
)

func TestLockOrder(t *testing.T) {
	linttest.Run(t, lockorder.Analyzer, "a")
}
