package a

import "sync"

// Repository and repoShard mirror internal/repo's lock fields so the
// rank table (keyed on type name + field) applies to the fixture.
type Repository struct {
	polMu    sync.Mutex
	saveMu   sync.Mutex
	mu       sync.RWMutex
	usersMu  sync.RWMutex
	corpusMu sync.RWMutex
}

type repoShard struct {
	mu sync.RWMutex
}

type box struct {
	mu sync.Mutex
}

func (r *Repository) goodOrder(sh *repoShard) {
	r.polMu.Lock()
	defer r.polMu.Unlock()
	r.mu.Lock()
	defer r.mu.Unlock()
	sh.mu.Lock()
	defer sh.mu.Unlock()
}

func (r *Repository) goodSavePath(sh *repoShard) {
	r.saveMu.Lock()
	defer r.saveMu.Unlock()
	sh.mu.RLock()
	defer sh.mu.RUnlock()
}

func (r *Repository) shardBeforePolicy(sh *repoShard) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	r.polMu.Lock() // want "acquires r.polMu while holding sh.mu, inverting the lock hierarchy"
	defer r.polMu.Unlock()
}

func (r *Repository) saveBeforePolicy() {
	r.saveMu.Lock()
	defer r.saveMu.Unlock()
	r.polMu.Lock() // want "acquires r.polMu while holding r.saveMu"
	defer r.polMu.Unlock()
}

func (r *Repository) corpusBeforeDirectory() {
	r.corpusMu.Lock()
	defer r.corpusMu.Unlock()
	r.mu.RLock() // want "acquires r.mu while holding r.corpusMu"
	defer r.mu.RUnlock()
}

func (r *Repository) recursive() {
	r.polMu.Lock()
	defer r.polMu.Unlock()
	r.polMu.Lock() // want "recursive lock of r.polMu"
	defer r.polMu.Unlock()
}

// Sequential (non-nested) sections are not an ordering violation.
func (r *Repository) sequential(sh *repoShard) {
	sh.mu.Lock()
	sh.mu.Unlock()
	r.polMu.Lock()
	r.polMu.Unlock()
}

// An explicit unlock with no return in between is fine.
func (b *box) explicitUnlock() int {
	b.mu.Lock()
	v := 1
	b.mu.Unlock()
	return v
}

// A deferred closure releasing the lock counts as a deferred unlock.
func (b *box) closureUnlock() {
	b.mu.Lock()
	defer func() {
		b.mu.Unlock()
	}()
}

func (b *box) earlyReturn(cond bool) int {
	b.mu.Lock() // want "b.mu is still locked on the return path"
	if cond {
		return 1
	}
	b.mu.Unlock()
	return 0
}

func (b *box) neverReleased() {
	b.mu.Lock() // want "never released in this function"
}

func (b *box) annotatedHandoff() {
	//provlint:ignore lockorder lock handed off to the caller, released by (*box).release
	b.mu.Lock()
}

func (b *box) release() {
	b.mu.Unlock()
}
