// Package lockorder enforces the repository's documented mutex
// hierarchy and the defer-unlock discipline.
//
// The invariant (internal/repo package doc, hardened across PRs 2–7):
// policy-sensitive mutators take polMu before any other lock; the save
// path takes saveMu before reading shard state; the shard directory
// lock comes before corpusMu and before any individual shard's lock.
// Violating the order is a lock-inversion deadlock that the race
// detector only catches on the schedule the tests happen to run.
//
// Two checks:
//
//  1. order: a Lock()/RLock() on a ranked mutex while a higher-ranked
//     mutex is held is reported. Ranks are keyed by (receiver type,
//     field) so the directory lock Repository.mu and a shard's
//     repoShard.mu — same field name — order correctly.
//  2. release: every Lock()/RLock() must be released in the same
//     function, preferably via defer. A lock whose first release
//     appears after an intervening return statement (an exit path that
//     leaves the mutex held), or that is never released in the
//     function at all, is reported. Deliberate lock handoffs use
//     //provlint:ignore lockorder <reason>.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"

	"provpriv/internal/analysis/lintkit"
)

// rank orders the repository's named mutexes, outermost first. Keys
// are "<receiver type>.<field>".
var rank = map[string]int{
	"Repository.polMu":    10,
	"Repository.saveMu":   20,
	"Repository.mu":       30,
	"Repository.usersMu":  35,
	"Repository.corpusMu": 40,
	"repoShard.mu":        50,
}

const orderDoc = "documented order: polMu → saveMu → mu (directory) → usersMu → corpusMu → mu (shard)"

var Analyzer = &lintkit.Analyzer{
	Name: "lockorder",
	Doc: "enforce the polMu → saveMu → directory mu → corpusMu → shard mu hierarchy " +
		"and that every Lock has a matching (ideally deferred) Unlock in the same function",
	Run: run,
}

type opKind int

const (
	opLock opKind = iota
	opUnlock
	opReturn
)

// event is one mutex operation or return statement, in source order.
type event struct {
	kind     opKind
	key      string // printed receiver expression, e.g. "r.polMu"
	qual     string // "Type.field" for ranked lookup, "" if unranked
	read     bool   // RLock/RUnlock
	deferred bool   // unlock scheduled by a defer statement
	pos      token.Pos
}

func run(pass *lintkit.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkBody(pass, fn.Body)
				}
			case *ast.FuncLit:
				checkBody(pass, fn.Body)
			}
			return true
		})
	}
	return nil
}

// collect flattens a function body into mutex events in source order,
// without descending into nested function literals (they execute on
// their own schedule) — except literals inside a defer statement,
// whose unlocks count as deferred releases of the enclosing function.
func collect(pass *lintkit.Pass, body *ast.BlockStmt) []event {
	var events []event
	var walk func(n ast.Node, inDefer bool)
	walk = func(n ast.Node, inDefer bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch x := m.(type) {
			case *ast.FuncLit:
				return false // separate schedule; analyzed on its own
			case *ast.DeferStmt:
				if ev, ok := mutexOp(pass, x.Call); ok {
					ev.deferred = true
					events = append(events, ev)
					return false
				}
				if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
					// defer func() { ... mu.Unlock() ... }()
					ast.Inspect(lit.Body, func(d ast.Node) bool {
						if call, ok := d.(*ast.CallExpr); ok {
							if ev, ok := mutexOp(pass, call); ok && ev.kind == opUnlock {
								ev.deferred = true
								events = append(events, ev)
							}
						}
						return true
					})
					return false
				}
				return false
			case *ast.ReturnStmt:
				events = append(events, event{kind: opReturn, pos: x.Pos()})
			case *ast.CallExpr:
				if ev, ok := mutexOp(pass, x); ok {
					ev.deferred = inDefer
					events = append(events, ev)
				}
			}
			return true
		})
	}
	walk(body, false)
	return events
}

// mutexOp recognizes x.Lock / x.RLock / x.Unlock / x.RUnlock calls on
// sync.Mutex / sync.RWMutex values.
func mutexOp(pass *lintkit.Pass, call *ast.CallExpr) (event, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return event{}, false
	}
	var kind opKind
	var read bool
	switch sel.Sel.Name {
	case "Lock":
		kind = opLock
	case "RLock":
		kind, read = opLock, true
	case "Unlock":
		kind = opUnlock
	case "RUnlock":
		kind, read = opUnlock, true
	default:
		return event{}, false
	}
	recv := sel.X
	if !isMutex(pass.TypesInfo.TypeOf(recv)) {
		return event{}, false
	}
	return event{
		kind: kind,
		key:  types.ExprString(recv),
		qual: qualifiedField(pass, recv),
		read: read,
		pos:  call.Pos(),
	}, true
}

func isMutex(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// qualifiedField resolves a mutex receiver of the form base.field to
// "BaseType.field" for the rank table.
func qualifiedField(pass *lintkit.Pass, recv ast.Expr) string {
	sel, ok := recv.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	t := pass.TypesInfo.TypeOf(sel.X)
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return named.Obj().Name() + "." + sel.Sel.Name
}

type held struct {
	key  string
	rank int
	read bool
}

func checkBody(pass *lintkit.Pass, body *ast.BlockStmt) {
	events := collect(pass, body)

	// Check 1: acquisition order against the rank table, tracked
	// linearly through the event stream (branch-insensitive: a lock
	// is held from its Lock until its first non-deferred Unlock).
	var holds []held
	for _, ev := range events {
		switch ev.kind {
		case opLock:
			r, ranked := rank[ev.qual]
			for _, h := range holds {
				if h.key == ev.key && !(h.read && ev.read) {
					pass.Reportf(ev.pos, "recursive lock of %s (already held here)", ev.key)
				}
				if ranked && h.rank > r {
					pass.Reportf(ev.pos, "acquires %s while holding %s, inverting the lock hierarchy; %s",
						ev.key, h.key, orderDoc)
				}
			}
			hr := -1
			if ranked {
				hr = r
			}
			holds = append(holds, held{key: ev.key, rank: hr, read: ev.read})
		case opUnlock:
			if !ev.deferred {
				for i := len(holds) - 1; i >= 0; i-- {
					if holds[i].key == ev.key {
						holds = append(holds[:i], holds[i+1:]...)
						break
					}
				}
			}
		}
	}

	// Check 2: release discipline. For each Lock, the first matching
	// release must be a defer, or must come with no return statement
	// in between (an early return would leave the mutex held).
	for i, ev := range events {
		if ev.kind != opLock {
			continue
		}
		releaseIdx := -1
		for j := i + 1; j < len(events); j++ {
			e := events[j]
			if e.kind == opUnlock && e.key == ev.key {
				releaseIdx = j
				break
			}
			// A deferred unlock registered before the lock (defer runs
			// at exit, order irrelevant) also releases it.
		}
		if releaseIdx == -1 {
			// A defer registered earlier in the function still releases.
			for j := 0; j < i; j++ {
				if events[j].kind == opUnlock && events[j].deferred && events[j].key == ev.key {
					releaseIdx = j
					break
				}
			}
		}
		if releaseIdx == -1 {
			pass.Reportf(ev.pos, "%s.Lock() is never released in this function; use defer %s.Unlock() (or annotate a deliberate handoff)",
				ev.key, ev.key)
			continue
		}
		rel := events[releaseIdx]
		if rel.deferred || releaseIdx < i {
			continue
		}
		for j := i + 1; j < releaseIdx; j++ {
			if events[j].kind == opReturn {
				pass.Reportf(ev.pos, "%s is still locked on the return path at line %d; use defer %s.Unlock()",
					ev.key, pass.Fset.Position(events[j].pos).Line, ev.key)
				break
			}
		}
	}
}
