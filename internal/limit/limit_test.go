package limit

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeClock is an injectable, manually advanced clock.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// TestBucketBurstAndRefill: a fresh principal gets its full burst, then
// rejections until tokens refill at the configured rate.
func TestBucketBurstAndRefill(t *testing.T) {
	clk := newFakeClock()
	l := New(Config{})
	l.SetClock(clk.Now)
	r := Rate{PerSec: 2, Burst: 3}

	for i := 0; i < 3; i++ {
		d := l.Allow("alice", r)
		if !d.OK {
			t.Fatalf("burst request %d rejected: %v", i, d.Reason)
		}
		d.Release()
	}
	d := l.Allow("alice", r)
	if d.OK {
		t.Fatal("4th request within the burst window admitted")
	}
	if d.Reason != ReasonRate {
		t.Fatalf("reason = %v, want rate", d.Reason)
	}
	// Empty bucket at 2 tokens/s: one token refills in 500ms.
	if d.RetryAfter <= 0 || d.RetryAfter > 500*time.Millisecond {
		t.Fatalf("RetryAfter = %v, want (0, 500ms]", d.RetryAfter)
	}
	d.Release() // rejected Release must be a safe no-op

	clk.Advance(500 * time.Millisecond)
	if d := l.Allow("alice", r); !d.OK {
		t.Fatalf("request after refill rejected: %v", d.Reason)
	} else {
		d.Release()
	}

	// A long idle period refills to the burst cap, not beyond.
	clk.Advance(time.Hour)
	admitted := 0
	for i := 0; i < 10; i++ {
		if d := l.Allow("alice", r); d.OK {
			admitted++
			d.Release()
		}
	}
	if admitted != 3 {
		t.Fatalf("admitted %d after long idle, want burst cap 3", admitted)
	}
}

// TestZeroRateUnlimited: a zero Rate never rate-rejects.
func TestZeroRateUnlimited(t *testing.T) {
	l := New(Config{})
	l.SetClock(newFakeClock().Now)
	for i := 0; i < 1000; i++ {
		d := l.Allow("anyone", Rate{})
		if !d.OK {
			t.Fatalf("request %d rejected under zero rate: %v", i, d.Reason)
		}
		d.Release()
	}
}

// TestBucketsAreIndependent: one principal exhausting its budget never
// costs another principal a token.
func TestBucketsAreIndependent(t *testing.T) {
	clk := newFakeClock()
	l := New(Config{})
	l.SetClock(clk.Now)
	r := Rate{PerSec: 1, Burst: 2}

	for i := 0; ; i++ {
		d := l.Allow("noisy", r)
		if !d.OK {
			break
		}
		d.Release()
		if i > 10 {
			t.Fatal("noisy principal never exhausted")
		}
	}
	for i := 0; i < 2; i++ {
		if d := l.Allow("quiet", r); !d.OK {
			t.Fatalf("quiet principal rejected (%v) after noisy exhausted its own bucket", d.Reason)
		} else {
			d.Release()
		}
	}
}

// TestPerPrincipalInFlightCap: holding Decisions open hits the
// concurrency cap; Release frees a slot.
func TestPerPrincipalInFlightCap(t *testing.T) {
	l := New(Config{MaxInFlightPerPrincipal: 2})
	l.SetClock(newFakeClock().Now)

	d1 := l.Allow("alice", Rate{})
	d2 := l.Allow("alice", Rate{})
	if !d1.OK || !d2.OK {
		t.Fatal("first two concurrent requests rejected")
	}
	d3 := l.Allow("alice", Rate{})
	if d3.OK {
		t.Fatal("3rd concurrent request admitted past cap 2")
	}
	if d3.Reason != ReasonConcurrency {
		t.Fatalf("reason = %v, want concurrency", d3.Reason)
	}
	// Another principal is unaffected.
	if d := l.Allow("bob", Rate{}); !d.OK {
		t.Fatalf("other principal rejected: %v", d.Reason)
	} else {
		d.Release()
	}
	d1.Release()
	if d := l.Allow("alice", Rate{}); !d.OK {
		t.Fatalf("request after Release rejected: %v", d.Reason)
	} else {
		d.Release()
	}
	d2.Release()
}

// TestGlobalInFlightCap: AcquireGlobal admits up to the cap and counts
// overload rejections.
func TestGlobalInFlightCap(t *testing.T) {
	l := New(Config{MaxInFlight: 2})
	if !l.AcquireGlobal() || !l.AcquireGlobal() {
		t.Fatal("acquisitions within cap refused")
	}
	if l.AcquireGlobal() {
		t.Fatal("acquisition past cap admitted")
	}
	l.ReleaseGlobal()
	if !l.AcquireGlobal() {
		t.Fatal("acquisition after release refused")
	}
	l.ReleaseGlobal()
	l.ReleaseGlobal()
	if st := l.Stats(); st.RejectedOverload != 1 || st.InFlight != 0 {
		t.Fatalf("stats = %+v, want 1 overload rejection and 0 in flight", st)
	}
}

// TestEviction: the bucket map stays bounded, evicting the LRU idle
// bucket; buckets with requests in flight are never evicted.
func TestEviction(t *testing.T) {
	clk := newFakeClock()
	l := New(Config{MaxPrincipals: 3})
	l.SetClock(clk.Now)

	held := l.Allow("pinned", Rate{})
	if !held.OK {
		t.Fatal("pinned rejected")
	}
	for i := 0; i < 10; i++ {
		clk.Advance(time.Second) // distinct lastUsed per bucket
		d := l.Allow(fmt.Sprintf("p%d", i), Rate{})
		if !d.OK {
			t.Fatalf("p%d rejected", i)
		}
		d.Release()
	}
	st := l.Stats()
	if st.Principals > 3 {
		t.Fatalf("principals = %d, want ≤ 3", st.Principals)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions recorded")
	}
	for _, ps := range st.PerPrincipal {
		if ps.Principal == "pinned" {
			held.Release()
			return
		}
	}
	t.Fatal("pinned bucket (in flight) was evicted")
}

// TestStatsSnapshot: counters and bucket state per principal.
func TestStatsSnapshot(t *testing.T) {
	clk := newFakeClock()
	l := New(Config{})
	l.SetClock(clk.Now)
	r := Rate{PerSec: 1, Burst: 2}

	d := l.Allow("alice", r)
	d.Release()
	l.Allow("alice", r).Release()
	if d := l.Allow("alice", r); d.OK { // bucket empty now
		t.Fatal("expected rate rejection")
	}
	st := l.Stats()
	if st.Allowed != 2 || st.RejectedRate != 1 {
		t.Fatalf("allowed=%d rejectedRate=%d, want 2/1", st.Allowed, st.RejectedRate)
	}
	if len(st.PerPrincipal) != 1 || st.PerPrincipal[0].Principal != "alice" {
		t.Fatalf("per-principal = %+v", st.PerPrincipal)
	}
	ps := st.PerPrincipal[0]
	if ps.Allowed != 2 || ps.RejectedRate != 1 || ps.TokensLeft >= 1 {
		t.Fatalf("alice stats = %+v", ps)
	}
}

// TestConcurrentAllow hammers a few buckets from many goroutines (run
// with -race): invariants, not exact counts — in-flight returns to
// zero and allowed+rejected equals the request total.
func TestConcurrentAllow(t *testing.T) {
	l := New(Config{MaxInFlight: 8, MaxInFlightPerPrincipal: 4, MaxPrincipals: 8})
	const goroutines = 16
	const perG = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := fmt.Sprintf("p%d", g%4)
			for i := 0; i < perG; i++ {
				if !l.AcquireGlobal() {
					continue
				}
				d := l.Allow(key, Rate{PerSec: 1e9, Burst: 1e9})
				d.Release()
				l.ReleaseGlobal()
			}
		}(g)
	}
	wg.Wait()
	st := l.Stats()
	if st.InFlight != 0 {
		t.Fatalf("in flight after drain = %d", st.InFlight)
	}
	for _, ps := range st.PerPrincipal {
		if ps.InFlight != 0 {
			t.Fatalf("principal %s in flight = %d", ps.Principal, ps.InFlight)
		}
	}
}

// TestAllowWarmPathAllocs: the admitted warm path (existing bucket)
// must not allocate — the transport's ≤1-alloc budget depends on it.
func TestAllowWarmPathAllocs(t *testing.T) {
	l := New(Config{MaxInFlightPerPrincipal: 100})
	l.Allow("alice", Rate{PerSec: 1e9, Burst: 1e9}).Release() // create the bucket
	allocs := testing.AllocsPerRun(500, func() {
		d := l.Allow("alice", Rate{PerSec: 1e9, Burst: 1e9})
		d.Release()
	})
	if allocs > 0 {
		t.Fatalf("warm Allow/Release allocates %.1f/op, want 0", allocs)
	}
}

// TestReasonString pins the strings the transport embeds in 429 bodies.
func TestReasonString(t *testing.T) {
	for want, r := range map[string]Reason{
		"none": ReasonNone, "rate": ReasonRate, "concurrency": ReasonConcurrency,
	} {
		if got := r.String(); got != want {
			t.Fatalf("Reason(%d).String() = %q, want %q", r, got, want)
		}
	}
}
