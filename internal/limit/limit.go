// Package limit is the admission-control layer in front of the HTTP
// service: per-principal token buckets (rate limiting) plus per-principal
// and global in-flight concurrency caps (load shedding). It exists so
// one abusive or runaway principal cannot starve everyone else — the
// protection half of the ROADMAP's production-traffic-hardening item,
// complementing the observability half (internal/obs).
//
// Design constraints, mirroring internal/obs:
//
//  1. The warm admitted path must stay allocation-free: buckets live in
//     an RWMutex-guarded map keyed by principal, bucket state is a small
//     mutex-guarded float pair, and Allow returns a by-value Decision
//     whose Release method decrements the exact bucket it admitted —
//     no second lookup, no closure. The only allocation a principal
//     ever causes is its bucket, once.
//  2. Degradation is graceful and distinguishable. A rejected request
//     carries a Reason (rate vs concurrency) and a RetryAfter hint
//     (time until one token refills), so the transport can answer
//     429 + Retry-After for per-principal limits and 503 for global
//     overload — a client can tell "slow down" from "come back later".
//  3. Principal cardinality is an attack surface (header-auth dev mode
//     accepts arbitrary names), so the bucket map is bounded: past
//     MaxPrincipals the least-recently-used idle bucket is evicted.
//
// The package is transport- and auth-agnostic: callers pick the bucket
// key (token name, header principal) and the Rate (typically per role).
package limit

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Rate is one token-bucket budget: a sustained refill rate plus the
// bucket depth (the tolerated burst). The zero Rate is unlimited — a
// principal with no configured budget pays only the concurrency caps.
type Rate struct {
	// PerSec is the sustained refill rate in requests per second.
	// Zero or negative disables rate limiting for this call.
	PerSec float64
	// Burst is the bucket depth. Values below 1 are treated as 1: a
	// limited principal can always make at least one request.
	Burst float64
}

func (r Rate) limited() bool { return r.PerSec > 0 }

func (r Rate) burst() float64 {
	if r.Burst < 1 {
		return 1
	}
	return r.Burst
}

// Reason says why a Decision rejected.
type Reason uint8

const (
	// ReasonNone marks an admitted Decision.
	ReasonNone Reason = iota
	// ReasonRate: the principal's token bucket is empty.
	ReasonRate
	// ReasonConcurrency: the principal is already running its maximum
	// number of in-flight requests.
	ReasonConcurrency
)

func (r Reason) String() string {
	switch r {
	case ReasonRate:
		return "rate"
	case ReasonConcurrency:
		return "concurrency"
	default:
		return "none"
	}
}

// Decision is the outcome of one admission check. Admitted decisions
// hold the bucket they incremented; the caller MUST call Release exactly
// once when the request finishes. Rejected decisions carry the reason
// and a retry hint; Release on them is a no-op, so an unconditional
// deferred Release is safe.
type Decision struct {
	// OK reports whether the request was admitted.
	OK bool
	// Reason explains a rejection (ReasonNone when admitted).
	Reason Reason
	// RetryAfter estimates when retrying could succeed: the time until
	// one token refills for rate rejections, a nominal second for
	// concurrency rejections. Zero when admitted.
	RetryAfter time.Duration

	b *bucket
}

// Release returns the admitted request's in-flight slot. No-op for
// rejected decisions and the zero Decision.
func (d Decision) Release() {
	if d.b != nil {
		d.b.inflight.Add(-1)
	}
}

// Config bounds a Limiter. Zero values mean "unlimited" for the caps
// and "default" for the map bound.
type Config struct {
	// MaxInFlight caps requests admitted concurrently across all
	// principals (AcquireGlobal/ReleaseGlobal). 0 = unlimited.
	MaxInFlight int
	// MaxInFlightPerPrincipal caps one principal's concurrent requests.
	// 0 = unlimited.
	MaxInFlightPerPrincipal int
	// MaxPrincipals bounds the bucket map; past it the least-recently-
	// used idle bucket is evicted. 0 = DefaultMaxPrincipals.
	MaxPrincipals int
}

// DefaultMaxPrincipals is the bucket-map bound when Config leaves it 0.
const DefaultMaxPrincipals = 4096

// bucket is one principal's admission state. The mutex guards the
// token-bucket floats; counters are atomics so Release and Stats never
// take it.
type bucket struct {
	mu     sync.Mutex
	tokens float64
	last   time.Time // zero until the first limited request seeds the bucket

	inflight atomic.Int64
	lastUsed atomic.Int64 // unix nanos, for LRU eviction

	allowed      atomic.Int64 //provlint:counter
	rejectedRate atomic.Int64 //provlint:counter
	rejectedConc atomic.Int64 //provlint:counter
}

// Limiter is the admission controller. Safe for arbitrary concurrency.
type Limiter struct {
	cfg Config
	now func() time.Time

	mu      sync.RWMutex
	buckets map[string]*bucket

	global atomic.Int64

	allowed     atomic.Int64 //provlint:counter
	rejRate     atomic.Int64 //provlint:counter
	rejConc     atomic.Int64 //provlint:counter
	rejOverload atomic.Int64 //provlint:counter
	evictions   atomic.Int64 //provlint:counter
}

// New builds a Limiter.
func New(cfg Config) *Limiter {
	if cfg.MaxPrincipals <= 0 {
		cfg.MaxPrincipals = DefaultMaxPrincipals
	}
	return &Limiter{cfg: cfg, now: time.Now, buckets: make(map[string]*bucket)}
}

// SetClock injects a clock for deterministic tests. Not safe to call
// concurrently with Allow.
func (l *Limiter) SetClock(now func() time.Time) { l.now = now }

// bucket returns key's bucket, creating (and possibly evicting) under
// the write lock on first sight. The warm path is one RLock map hit.
func (l *Limiter) bucket(key string) *bucket {
	l.mu.RLock()
	b := l.buckets[key]
	l.mu.RUnlock()
	if b != nil {
		return b
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if b = l.buckets[key]; b != nil {
		return b
	}
	if len(l.buckets) >= l.cfg.MaxPrincipals {
		l.evictLocked()
	}
	b = &bucket{}
	l.buckets[key] = b
	return b
}

// evictLocked drops the least-recently-used bucket with no requests in
// flight. When every bucket is busy the map grows past the bound — the
// global in-flight cap bounds that overshoot. A request that fetched a
// bucket pointer but has not yet incremented inflight can race an
// eviction; the orphan bucket still enforces its caps for that one
// request and is then garbage, so the race is benign.
func (l *Limiter) evictLocked() {
	var victimKey string
	var victim *bucket
	oldest := int64(math.MaxInt64)
	for k, b := range l.buckets {
		if b.inflight.Load() > 0 {
			continue
		}
		if lu := b.lastUsed.Load(); lu < oldest {
			oldest, victimKey, victim = lu, k, b
		}
	}
	if victim != nil {
		delete(l.buckets, victimKey)
		l.evictions.Add(1)
	}
}

// Allow runs one admission check for key under rate r: refill the
// bucket, reject if it is empty (ReasonRate) or the principal is at its
// concurrency cap (ReasonConcurrency), otherwise take a token and an
// in-flight slot. The caller must Release the returned Decision.
func (l *Limiter) Allow(key string, r Rate) Decision {
	b := l.bucket(key)
	now := l.now()
	b.lastUsed.Store(now.UnixNano())
	b.mu.Lock()
	if r.limited() {
		burst := r.burst()
		if b.last.IsZero() {
			// First limited request: a full bucket, so a new principal
			// gets its burst before the rate bites.
			b.tokens, b.last = burst, now
		} else if el := now.Sub(b.last); el > 0 {
			b.tokens = math.Min(burst, b.tokens+el.Seconds()*r.PerSec)
			b.last = now
		}
		if b.tokens < 1 {
			need := time.Duration((1 - b.tokens) / r.PerSec * float64(time.Second))
			b.mu.Unlock()
			b.rejectedRate.Add(1)
			l.rejRate.Add(1)
			return Decision{Reason: ReasonRate, RetryAfter: need}
		}
	}
	if cap := l.cfg.MaxInFlightPerPrincipal; cap > 0 && b.inflight.Load() >= int64(cap) {
		b.mu.Unlock()
		b.rejectedConc.Add(1)
		l.rejConc.Add(1)
		// The slot frees when an in-flight request finishes; one second
		// is a nominal, honest hint.
		return Decision{Reason: ReasonConcurrency, RetryAfter: time.Second}
	}
	if r.limited() {
		b.tokens--
	}
	b.inflight.Add(1)
	b.mu.Unlock()
	b.allowed.Add(1)
	l.allowed.Add(1)
	return Decision{OK: true, b: b}
}

// AcquireGlobal takes one slot of the global in-flight cap, reporting
// false (and counting an overload rejection) when the server is full.
// Admitted callers must ReleaseGlobal.
func (l *Limiter) AcquireGlobal() bool {
	n := l.global.Add(1)
	if max := l.cfg.MaxInFlight; max > 0 && n > int64(max) {
		l.global.Add(-1)
		l.rejOverload.Add(1)
		return false
	}
	return true
}

// ReleaseGlobal returns a slot taken by a successful AcquireGlobal.
func (l *Limiter) ReleaseGlobal() { l.global.Add(-1) }

// PrincipalStat is one principal's admission snapshot — including the
// live bucket state (tokens left, requests in flight), so /stats shows
// who is near their budget.
type PrincipalStat struct {
	Principal           string  `json:"principal"`
	TokensLeft          float64 `json:"tokens_left"`
	InFlight            int64   `json:"in_flight"`
	Allowed             int64   `json:"allowed"`
	RejectedRate        int64   `json:"rejected_rate"`
	RejectedConcurrency int64   `json:"rejected_concurrency"`
}

// Stats is the limiter's counter snapshot.
type Stats struct {
	Allowed             int64           `json:"allowed_total"`
	RejectedRate        int64           `json:"rejected_rate_total"`
	RejectedConcurrency int64           `json:"rejected_concurrency_total"`
	RejectedOverload    int64           `json:"rejected_overload_total"`
	Evictions           int64           `json:"bucket_evictions_total"`
	InFlight            int64           `json:"in_flight"`
	Principals          int             `json:"principals"`
	PerPrincipal        []PrincipalStat `json:"per_principal,omitempty"`
}

// Stats snapshots the limiter, per-principal rows sorted by name.
func (l *Limiter) Stats() Stats {
	st := Stats{
		Allowed:             l.allowed.Load(),
		RejectedRate:        l.rejRate.Load(),
		RejectedConcurrency: l.rejConc.Load(),
		RejectedOverload:    l.rejOverload.Load(),
		Evictions:           l.evictions.Load(),
		InFlight:            l.global.Load(),
	}
	l.mu.RLock()
	st.Principals = len(l.buckets)
	st.PerPrincipal = make([]PrincipalStat, 0, len(l.buckets))
	for k, b := range l.buckets {
		b.mu.Lock()
		tokens := b.tokens
		b.mu.Unlock()
		st.PerPrincipal = append(st.PerPrincipal, PrincipalStat{
			Principal:           k,
			TokensLeft:          tokens,
			InFlight:            b.inflight.Load(),
			Allowed:             b.allowed.Load(),
			RejectedRate:        b.rejectedRate.Load(),
			RejectedConcurrency: b.rejectedConc.Load(),
		})
	}
	l.mu.RUnlock()
	sort.Slice(st.PerPrincipal, func(i, j int) bool {
		return st.PerPrincipal[i].Principal < st.PerPrincipal[j].Principal
	})
	return st
}
