// Package audit analyses a privacy policy against a workflow
// specification and reports, per access level, what is visible, how
// each structural-privacy requirement is best satisfied, and where
// protected data could leak through public downstream modules. It backs
// cmd/provaudit and is the programmatic pre-publication check a
// repository owner runs before sharing provenance (the paper's "you are
// better off designing in security and privacy ... from the start").
package audit

import (
	"fmt"
	"sort"
	"strings"

	"provpriv/internal/privacy"
	"provpriv/internal/structpriv"
	"provpriv/internal/workflow"
)

// LevelReport summarizes one access level's visibility.
type LevelReport struct {
	Level          privacy.Level
	View           []string // workflow ids of the access view
	ModulesVisible int
	HiddenAttrs    []string
}

// StructuralReport records the optimizer's verdict for one hidden pair.
type StructuralReport struct {
	Pair          structpriv.Pair
	RequiredLevel privacy.Level
	Satisfiable   bool
	Strategy      string
	Utility       float64
	LostPairs     int
	Extraneous    int
}

// LeakWarning flags a protected attribute flowing into a visible module
// with public outputs — a downstream oracle.
type LeakWarning struct {
	Level     privacy.Level
	Attr      string
	Module    string
	PublicOut string
}

func (w LeakWarning) String() string {
	return fmt.Sprintf("level %s: attr %q flows into visible module %s whose output %q is public",
		w.Level, w.Attr, w.Module, w.PublicOut)
}

// Report is a complete audit.
type Report struct {
	SpecID     string
	Levels     []LevelReport
	Structural []StructuralReport
	Leaks      []LeakWarning
	// GammaModules lists modules with Γ requirements (certification is
	// per-relation; see modpriv).
	GammaModules map[string]int
}

// Run audits pol against spec. The policy must validate.
func Run(spec *workflow.Spec, pol *privacy.Policy) (*Report, error) {
	if err := pol.Validate(spec); err != nil {
		return nil, err
	}
	h, err := workflow.NewHierarchy(spec)
	if err != nil {
		return nil, err
	}
	full, err := workflow.Expand(spec, workflow.FullPrefix(h))
	if err != nil {
		return nil, err
	}
	rep := &Report{SpecID: spec.ID, GammaModules: map[string]int{}}
	for m, g := range pol.ModuleGamma {
		rep.GammaModules[m] = g
	}

	for _, lvl := range Levels(pol) {
		view := pol.AccessView(h, lvl)
		v, err := workflow.Expand(spec, view)
		if err != nil {
			return nil, err
		}
		visible := 0
		for _, fm := range v.Modules {
			if pol.CanSeeModule(lvl, fm.Module.ID) {
				visible++
			}
		}
		rep.Levels = append(rep.Levels, LevelReport{
			Level:          lvl,
			View:           view.IDs(),
			ModulesVisible: visible,
			HiddenAttrs:    pol.HiddenAttrs(lvl),
		})
	}

	g := full.Graph()
	for _, hp := range pol.Structural {
		pair := structpriv.Pair{From: hp.From, To: hp.To}
		sr := StructuralReport{Pair: pair, RequiredLevel: hp.Level}
		best, cands, err := structpriv.Optimize(g, []structpriv.Pair{pair}, structpriv.OptimizeOptions{})
		if err == nil {
			sr.Satisfiable = true
			for _, c := range cands {
				if c.Result == best {
					sr.Strategy = c.Note
				}
			}
			m := best.Metrics
			sr.Utility = m.UtilityScore()
			sr.LostPairs = m.LostPairs
			sr.Extraneous = m.ExtraneousPairs
		}
		rep.Structural = append(rep.Structural, sr)
	}

	for _, lvl := range Levels(pol) {
		hidden := make(map[string]bool)
		for _, a := range pol.HiddenAttrs(lvl) {
			hidden[a] = true
		}
		if len(hidden) == 0 {
			continue
		}
		for _, fm := range full.Modules {
			m := fm.Module
			if !pol.CanSeeModule(lvl, m.ID) {
				continue
			}
			for _, in := range m.Inputs {
				if !hidden[in] {
					continue
				}
				for _, out := range m.Outputs {
					if !hidden[out] {
						rep.Leaks = append(rep.Leaks, LeakWarning{
							Level: lvl, Attr: in, Module: m.ID, PublicOut: out,
						})
					}
				}
			}
		}
	}
	return rep, nil
}

// Levels returns the access levels worth auditing: every level the
// policy mentions, each "first level denied" below a data requirement,
// and Public; sorted ascending.
func Levels(pol *privacy.Policy) []privacy.Level {
	set := map[privacy.Level]bool{privacy.Public: true}
	for _, l := range pol.DataLevels {
		set[l] = true
		if l > 0 {
			set[l-1] = true
		}
	}
	for _, l := range pol.ModuleLevels {
		set[l] = true
	}
	for l := range pol.ViewGrants {
		set[l] = true
	}
	out := make([]privacy.Level, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Render prints the report for terminals.
func (rep *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "audit of policy for spec %q\n", rep.SpecID)
	b.WriteString("\n== access levels ==\n")
	for _, lr := range rep.Levels {
		fmt.Fprintf(&b, "%-12s view={%s}  modules visible=%d  hidden attrs=%v\n",
			lr.Level, strings.Join(lr.View, " "), lr.ModulesVisible, lr.HiddenAttrs)
	}
	if len(rep.Structural) > 0 {
		b.WriteString("\n== structural privacy ==\n")
		for _, sr := range rep.Structural {
			if !sr.Satisfiable {
				fmt.Fprintf(&b, "%s: UNSATISFIABLE\n", sr.Pair)
				continue
			}
			fmt.Fprintf(&b, "%s (below %s): best=%q utility=%.3f lost=%d extraneous=%d\n",
				sr.Pair, sr.RequiredLevel, sr.Strategy, sr.Utility, sr.LostPairs, sr.Extraneous)
			if sr.Extraneous > 0 {
				fmt.Fprintf(&b, "  WARNING: chosen view is unsound (%d fabricated paths)\n", sr.Extraneous)
			}
		}
	}
	b.WriteString("\n== downstream-leak warnings ==\n")
	if len(rep.Leaks) == 0 {
		b.WriteString("none\n")
	} else {
		for _, w := range rep.Leaks {
			fmt.Fprintf(&b, "%s\n", w)
		}
		fmt.Fprintf(&b, "%d warning(s); consider modpriv.GreedyChainSecureView or Propagate mode\n", len(rep.Leaks))
	}
	if len(rep.GammaModules) > 0 {
		b.WriteString("\n== module privacy requirements ==\n")
		mods := make([]string, 0, len(rep.GammaModules))
		for m := range rep.GammaModules {
			mods = append(mods, m)
		}
		sort.Strings(mods)
		for _, m := range mods {
			fmt.Fprintf(&b, "%s: requires Γ=%d — certify with modpriv over the module's relation\n",
				m, rep.GammaModules[m])
		}
	}
	return b.String()
}
