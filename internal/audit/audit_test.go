package audit

import (
	"strings"
	"testing"

	"provpriv/internal/privacy"
	"provpriv/internal/workflow"
)

func examplePolicy(t *testing.T) (*workflow.Spec, *privacy.Policy) {
	t.Helper()
	spec := workflow.DiseaseSusceptibility()
	pol := privacy.NewPolicy(spec.ID)
	pol.DataLevels["snps"] = privacy.Owner
	pol.DataLevels["disorders"] = privacy.Analyst
	pol.ModuleLevels["M6"] = privacy.Owner
	pol.ModuleGamma["M1"] = 4
	pol.Structural = []privacy.HiddenPair{{From: "M13", To: "M11", Level: privacy.Owner}}
	pol.ViewGrants[privacy.Registered] = []string{"W2"}
	pol.ViewGrants[privacy.Analyst] = []string{"W3", "W4"}
	return spec, pol
}

func TestRunProducesFullReport(t *testing.T) {
	spec, pol := examplePolicy(t)
	rep, err := Run(spec, pol)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.SpecID != spec.ID {
		t.Fatalf("spec id = %s", rep.SpecID)
	}
	// Levels include public..owner.
	if len(rep.Levels) < 4 {
		t.Fatalf("levels = %d", len(rep.Levels))
	}
	// Public sees only W1 (4 modules).
	if rep.Levels[0].Level != privacy.Public || rep.Levels[0].ModulesVisible != 4 {
		t.Fatalf("public report = %+v", rep.Levels[0])
	}
	// Owner (last) sees all 14 modules, nothing hidden.
	last := rep.Levels[len(rep.Levels)-1]
	if last.ModulesVisible != 14 || len(last.HiddenAttrs) != 0 {
		t.Fatalf("owner report = %+v", last)
	}
	// Structural pair satisfiable (min edge cut wins on this graph).
	if len(rep.Structural) != 1 || !rep.Structural[0].Satisfiable {
		t.Fatalf("structural = %+v", rep.Structural)
	}
	if rep.Structural[0].Strategy == "" || rep.Structural[0].Utility <= 0 {
		t.Fatalf("structural strategy = %+v", rep.Structural[0])
	}
	// Leak warnings exist (snps feeds M3 whose snp_set is public).
	foundSnps := false
	for _, w := range rep.Leaks {
		if w.Attr == "snps" && w.Module == "M3" {
			foundSnps = true
		}
	}
	if !foundSnps {
		t.Fatalf("leaks = %+v, want snps->M3 warning", rep.Leaks)
	}
	if rep.GammaModules["M1"] != 4 {
		t.Fatalf("gamma modules = %v", rep.GammaModules)
	}
}

func TestRunRejectsInvalidPolicy(t *testing.T) {
	spec, _ := examplePolicy(t)
	bad := privacy.NewPolicy("other-spec")
	if _, err := Run(spec, bad); err == nil {
		t.Fatal("mismatched policy accepted")
	}
}

func TestNoLeaksWhenNothingHidden(t *testing.T) {
	spec := workflow.DiseaseSusceptibility()
	pol := privacy.NewPolicy(spec.ID)
	rep, err := Run(spec, pol)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(rep.Leaks) != 0 {
		t.Fatalf("leaks = %+v, want none", rep.Leaks)
	}
	if len(rep.Structural) != 0 {
		t.Fatalf("structural = %+v", rep.Structural)
	}
}

func TestLevelsHelper(t *testing.T) {
	_, pol := examplePolicy(t)
	ls := Levels(pol)
	if ls[0] != privacy.Public {
		t.Fatalf("levels = %v", ls)
	}
	for i := 1; i < len(ls); i++ {
		if ls[i] <= ls[i-1] {
			t.Fatalf("levels unsorted: %v", ls)
		}
	}
	// Includes owner (from data levels) and analyst (first denied +
	// grants).
	want := map[privacy.Level]bool{privacy.Owner: true, privacy.Analyst: true}
	for _, l := range ls {
		delete(want, l)
	}
	if len(want) != 0 {
		t.Fatalf("levels %v missing %v", ls, want)
	}
}

func TestRender(t *testing.T) {
	spec, pol := examplePolicy(t)
	rep, _ := Run(spec, pol)
	out := rep.Render()
	for _, wantSub := range []string{
		"access levels", "structural privacy", "downstream-leak warnings",
		"module privacy requirements", "M13->M11", "Γ=4",
	} {
		if !strings.Contains(out, wantSub) {
			t.Fatalf("Render missing %q:\n%s", wantSub, out)
		}
	}
}

// Mask-free policy on a module-private workflow: the leak scan skips
// modules the level cannot see (their outputs are not an oracle for
// that level).
func TestLeakScanSkipsHiddenModules(t *testing.T) {
	spec := workflow.DiseaseSusceptibility()
	pol := privacy.NewPolicy(spec.ID)
	pol.DataLevels["snps"] = privacy.Owner
	pol.ModuleLevels["M3"] = privacy.Owner // the would-be oracle is itself hidden
	rep, err := Run(spec, pol)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, w := range rep.Leaks {
		if w.Module == "M3" {
			t.Fatalf("hidden module reported as oracle: %+v", w)
		}
	}
}
