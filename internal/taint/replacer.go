// Compiled multi-pattern sanitizer. The per-label rewrite loop the
// engine started with re-scanned and re-allocated every trace string
// once per protected label (O(labels × length) strings.Contains/
// ReplaceAll passes, the dominant cost in BenchmarkTaintMask). The
// Replacer compiles all protected raw values of one taint analysis into
// a single prioritized pattern set, so sanitizing a value is one mark
// pass, one splice and one verification pass — never a chain of
// intermediate string copies.
//
// The mark pass has two tiers with identical semantics:
//
//   - up to acThreshold active patterns, occurrences are found with the
//     stdlib's vectorized strings.Index per pattern — for the few-long-
//     patterns shape real traces have, SIMD substring search beats any
//     byte-at-a-time automaton by an order of magnitude;
//   - past the threshold, an Aho–Corasick automaton over all patterns
//     (built lazily, once per Replacer) bounds the scan at O(length)
//     regardless of how many labels the policy protects.
//
// Match semantics mirror the sequential loop both tiers replace:
// occurrences are consumed left to right, the longest pattern starting
// at a position wins (the loop got this by replacing longest-raw-first),
// and of two labels sharing one raw value the one sorting first claims
// the match. The implementations are byte-identical on every input
// whose replacement text cannot itself combine with neighboring text
// into another protected value — which trace strings never do — and the
// differential property/fuzz tests in replacer_test.go pin that
// equivalence over the whole existing corpus, for both tiers. When they
// could diverge (pathological overlapping patterns), all paths remain
// leak-free because all gate on the same verify-or-redact pass.
package taint

import (
	"strings"
	"sync"

	"provpriv/internal/privacy"
)

// acThreshold is the active-pattern count above which the automaton
// tier takes over from per-pattern vectorized search.
const acThreshold = 32

// pattern is one compiled protected value: the (attr, raw) identity the
// engine needs to pick a replacement, plus the level below which the
// raw value must not be served.
type pattern struct {
	attr     string
	raw      string
	required privacy.Level
}

// Replacer is the compiled sanitizer over the protected raw values of
// one taint Set: patterns deduplicated by (attr, raw) and prioritized
// exactly like the rewrite loop's dedupeLabels (descending raw length,
// then attr, then raw). Immutable after compile apart from the lazily
// built automaton; safe for concurrent use — per-call scratch comes
// from a pool.
type Replacer struct {
	pats []pattern

	acOnce sync.Once
	ac     *automaton
}

// compileReplacer builds the pattern set from seed labels. The
// automaton tier is deferred until a rewrite actually needs it, so the
// common few-patterns case never pays the trie.
func compileReplacer(labels []Label) *Replacer {
	labels = dedupeLabels(labels)
	r := &Replacer{pats: make([]pattern, len(labels))}
	for i, l := range labels {
		r.pats[i] = pattern{attr: l.Attr, raw: string(l.Raw), required: l.Required}
	}
	return r
}

// Patterns returns how many distinct (attr, raw) patterns are compiled.
func (r *Replacer) Patterns() int { return len(r.pats) }

// replScratch is the pooled per-rewrite working memory: per-position
// best-match tables sized to the value being rewritten and an output
// buffer. Pooling keeps the steady-state sanitization path free of
// per-value allocations beyond the rewritten string itself.
type replScratch struct {
	lens []int32 // lens[i]: length of the winning match starting at i (0 = none)
	pats []int32 // pats[i]: its pattern index
	buf  []byte
}

var scratchPool = sync.Pool{New: func() any { return new(replScratch) }}

func (sc *replScratch) reset(n int) {
	if cap(sc.lens) < n {
		sc.lens = make([]int32, n)
		sc.pats = make([]int32, n)
	} else {
		sc.lens = sc.lens[:n]
		sc.pats = sc.pats[:n]
		for i := range sc.lens {
			sc.lens[i] = 0
		}
	}
}

// mark records, per start position of s, the longest active match
// beginning there (ties broken by pattern priority). Reports whether
// any match was found; sc is only initialized once the first match
// appears, so clean strings — the common case — never touch the tables.
func (sc *replScratch) mark(s string, start int, l, p int32, any bool) bool {
	if !any {
		sc.reset(len(s))
	}
	if l > sc.lens[start] {
		sc.lens[start] = l
		sc.pats[start] = p
	}
	return true
}

// rewrite sanitizes s: mark the winning (leftmost, longest, active)
// match per start position, then splice replacements in one pass.
// nActive is the number of patterns active may accept — it picks the
// mark tier. active selects which compiled patterns apply (per-item
// taint filtering plus the viewer-level gate); repl supplies each
// pattern's replacement. Returns the rewritten string, whether anything
// changed, and whether the result provably embeds no active raw value —
// callers must redact when clean is false, exactly as with the
// sequential loop.
func (r *Replacer) rewrite(s string, nActive int, active func(int32) bool, repl func(int32) string) (string, bool, bool) {
	if len(r.pats) == 0 || len(s) == 0 || nActive == 0 {
		return s, false, true
	}
	sc := scratchPool.Get().(*replScratch)
	defer scratchPool.Put(sc)

	var any bool
	if nActive <= acThreshold {
		any = r.markIndex(s, active, sc)
	} else {
		any = r.automaton().mark(r, s, active, sc)
	}
	if !any {
		return s, false, true
	}
	// Splice pass: greedy left-to-right over the winning matches.
	sc.buf = sc.buf[:0]
	for i := 0; i < len(s); {
		if l := sc.lens[i]; l > 0 {
			sc.buf = append(sc.buf, repl(sc.pats[i])...)
			i += int(l)
			continue
		}
		sc.buf = append(sc.buf, s[i])
		i++
	}
	out := string(sc.buf)
	// Prove the leak is gone: a replacement may itself contain another
	// active pattern's raw value (or, pathologically, its own).
	if r.contains(out, nActive, active) {
		return s, true, false
	}
	return out, true, true
}

// markIndex is the vectorized tier: every occurrence (including
// overlapping ones — stepping by one keeps the mark table identical to
// the automaton's) of every active pattern, via strings.Index.
func (r *Replacer) markIndex(s string, active func(int32) bool, sc *replScratch) bool {
	any := false
	for p := range r.pats {
		if !active(int32(p)) {
			continue
		}
		raw := r.pats[p].raw
		l := int32(len(raw))
		for off := 0; ; {
			i := strings.Index(s[off:], raw)
			if i < 0 {
				break
			}
			start := off + i
			// Equal-length ties: the first pattern in priority order that
			// marks a start keeps it (strict > in mark), matching the
			// sequential loop's first-ReplaceAll-wins behavior.
			any = sc.mark(s, start, l, int32(p), any)
			off = start + 1
		}
	}
	return any
}

// contains reports whether s embeds any active pattern — the verify
// pass, tiered like mark.
func (r *Replacer) contains(s string, nActive int, active func(int32) bool) bool {
	if nActive <= acThreshold {
		for p := range r.pats {
			if active(int32(p)) && strings.Contains(s, r.pats[p].raw) {
				return true
			}
		}
		return false
	}
	return r.automaton().contains(s, active)
}

// automaton returns the Aho–Corasick tier, building it on first use.
func (r *Replacer) automaton() *automaton {
	r.acOnce.Do(func() { r.ac = buildAutomaton(r.pats) })
	return r.ac
}

// ---------------------------------------------------------------------------
// Aho–Corasick tier.

// acState is one automaton state. Trie states overwhelmingly have a
// single successor (patterns are long strings with little branching),
// so the one-child case is inlined and only branching states carry an
// edge list.
type acState struct {
	c1 byte  // single-successor byte
	s1 int32 // its state, -1 if none
	// edges holds further successors of branching states (nil for most).
	edges []acEdge
	fail  int32
	// firstOut is the nearest state on the fail chain (including this
	// one) whose outs is non-empty, or -1: one comparison decides
	// whether any pattern ends at the current position.
	firstOut int32
	// outs lists the patterns whose raw ends exactly at this state, in
	// priority order (patterns sharing one raw string differ only by
	// attr; the first active one claims the match, exactly as the first
	// sequential ReplaceAll used to consume every occurrence).
	outs []int32
}

type acEdge struct {
	c byte
	s int32
}

type automaton struct {
	states []acState
	// root256 is the dense root transition table: scanning text that
	// starts no pattern costs one array load per byte.
	root256 [256]int32
}

func buildAutomaton(pats []pattern) *automaton {
	a := &automaton{states: []acState{{s1: -1, firstOut: -1}}}
	add := func(st int32, c byte) int32 {
		s := &a.states[st]
		if s.s1 >= 0 && s.c1 == c {
			return s.s1
		}
		for _, e := range s.edges {
			if e.c == c {
				return e.s
			}
		}
		nxt := int32(len(a.states))
		a.states = append(a.states, acState{s1: -1, firstOut: -1})
		s = &a.states[st] // re-resolve: append may have moved the backing array
		if s.s1 < 0 {
			s.c1, s.s1 = c, nxt
		} else {
			s.edges = append(s.edges, acEdge{c: c, s: nxt})
		}
		return nxt
	}
	for i, p := range pats {
		st := int32(0)
		for j := 0; j < len(p.raw); j++ {
			st = add(st, p.raw[j])
		}
		// Same raw under two attrs lands on one terminal state; patterns
		// arrive pre-sorted, so outs stays in priority order.
		a.states[st].outs = append(a.states[st].outs, int32(i))
	}
	// Breadth-first failure links (standard construction); fail states
	// are strictly shallower, so they are finalized before their users.
	var queue []int32
	a.states[0].eachEdge(func(c byte, nxt int32) {
		queue = append(queue, nxt)
	})
	for qi := 0; qi < len(queue); qi++ {
		st := queue[qi]
		f := a.states[st].fail
		if len(a.states[st].outs) > 0 {
			a.states[st].firstOut = st
		} else {
			a.states[st].firstOut = a.states[f].firstOut
		}
		a.states[st].eachEdge(func(c byte, nxt int32) {
			queue = append(queue, nxt)
			f := a.states[st].fail
			for f != 0 {
				if t := a.states[f].next(c); t >= 0 {
					break
				}
				f = a.states[f].fail
			}
			if t := a.states[f].next(c); t >= 0 {
				f = t
			}
			a.states[nxt].fail = f
		})
	}
	for c := 0; c < 256; c++ {
		a.root256[c] = 0
		if t := a.states[0].next(byte(c)); t >= 0 {
			a.root256[c] = t
		}
	}
	return a
}

func (s *acState) next(c byte) int32 {
	if s.s1 >= 0 && s.c1 == c {
		return s.s1
	}
	for _, e := range s.edges {
		if e.c == c {
			return e.s
		}
	}
	return -1
}

func (s *acState) eachEdge(fn func(byte, int32)) {
	if s.s1 >= 0 {
		fn(s.c1, s.s1)
	}
	for _, e := range s.edges {
		fn(e.c, e.s)
	}
}

// step advances the automaton by one input byte.
func (a *automaton) step(st int32, c byte) int32 {
	for st != 0 {
		if t := a.states[st].next(c); t >= 0 {
			return t
		}
		st = a.states[st].fail
	}
	return a.root256[c]
}

// mark is the automaton mark pass: every pattern occurrence ending at
// each position, filtered by active, recorded into the same tables the
// vectorized tier fills — the two tiers are interchangeable.
func (a *automaton) mark(r *Replacer, s string, active func(int32) bool, sc *replScratch) bool {
	st := int32(0)
	any := false
	for j := 0; j < len(s); j++ {
		st = a.step(st, s[j])
		for os := a.states[st].firstOut; os != -1; {
			cur := &a.states[os]
			for _, p := range cur.outs {
				if !active(p) {
					continue
				}
				l := int32(len(r.pats[p].raw))
				any = sc.mark(s, j+1-int(l), l, p, any)
				break // outs is priority-ordered; first active wins this raw
			}
			if os = cur.fail; os != 0 {
				os = a.states[os].firstOut
			} else {
				os = -1
			}
		}
	}
	return any
}

func (a *automaton) contains(s string, active func(int32) bool) bool {
	st := int32(0)
	for j := 0; j < len(s); j++ {
		st = a.step(st, s[j])
		for os := a.states[st].firstOut; os != -1; {
			cur := &a.states[os]
			for _, p := range cur.outs {
				if active(p) {
					return true
				}
			}
			if os = cur.fail; os != 0 {
				os = a.states[os].firstOut
			} else {
				os = -1
			}
		}
	}
	return false
}
