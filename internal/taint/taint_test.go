package taint_test

// Engine-level tests of seed → propagate → sanitize on the paper's
// disease-susceptibility workflow (the fixture whose trace-string leak
// motivated the subsystem) and on hand-built pathological executions.

import (
	"strings"
	"testing"

	"provpriv/internal/datapriv"
	"provpriv/internal/exec"
	"provpriv/internal/privacy"
	"provpriv/internal/taint"
	"provpriv/internal/workflow"
)

// diseaseRun executes the Fig. 1 workflow with the exact inputs of
// examples/disease and the Section 3 policy (snps and family_history
// owner-only, disorders analyst-only).
func diseaseRun(t testing.TB) (*exec.Execution, *privacy.Policy) {
	t.Helper()
	spec := workflow.DiseaseSusceptibility()
	e, err := exec.NewRunner(spec, nil).Run("E1", map[string]exec.Value{
		"snps": "rs123,rs456", "ethnicity": "eth1", "lifestyle": "active",
		"family_history": "cardiac", "symptoms": "fatigue",
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	pol := privacy.NewPolicy(spec.ID)
	pol.DataLevels["snps"] = privacy.Owner
	pol.DataLevels["family_history"] = privacy.Owner
	pol.DataLevels["disorders"] = privacy.Analyst
	return e, pol
}

func TestSanitizePublicRemovesProtectedValues(t *testing.T) {
	e, pol := diseaseRun(t)
	en := taint.NewEngine(pol, nil)
	masked, rep := en.Sanitize(e, privacy.Public)
	for id, it := range masked.Items {
		for _, raw := range []string{"rs123", "rs456", "cardiac"} {
			if strings.Contains(string(it.Value), raw) {
				t.Errorf("item %s (%s) leaks %q at Public: %q", id, it.Attr, raw, it.Value)
			}
		}
	}
	if rep.Rewritten == 0 {
		t.Fatalf("expected rewritten derived items, report = %+v", rep)
	}
	// The final output must survive as a rewritten trace, not be
	// redacted wholesale — that is the utility the rewrite buys.
	for _, id := range masked.ItemIDs() {
		if masked.Items[id].Attr == "prognosis" && masked.Items[id].Redacted {
			t.Fatalf("prognosis fully redacted; rewrite should have sufficed")
		}
	}
	if rep.Total() != len(e.Items) {
		t.Fatalf("report total %d != %d items", rep.Total(), len(e.Items))
	}
}

func TestSanitizeOwnerSeesEverything(t *testing.T) {
	e, pol := diseaseRun(t)
	masked, rep := taint.NewEngine(pol, nil).Sanitize(e, privacy.Owner)
	if rep.Visible != len(e.Items) || rep.Rewritten != 0 || rep.Redacted != 0 {
		t.Fatalf("owner report = %+v", rep)
	}
	for id, it := range e.Items {
		if masked.Items[id].Value != it.Value {
			t.Fatalf("owner value of %s changed: %q != %q", id, masked.Items[id].Value, it.Value)
		}
	}
}

func TestLabelsLevelFiltering(t *testing.T) {
	e, pol := diseaseRun(t)
	set := taint.NewEngine(pol, nil).Analyze(e)
	var prognosis string
	for _, id := range e.ItemIDs() {
		if e.Items[id].Attr == "prognosis" {
			prognosis = id
		}
	}
	if prognosis == "" {
		t.Fatal("no prognosis item")
	}
	attrsAt := func(lvl privacy.Level) map[string]bool {
		out := make(map[string]bool)
		for _, l := range set.LabelsFor(prognosis, lvl) {
			out[l.Attr] = true
		}
		return out
	}
	pub := attrsAt(privacy.Public)
	if !pub["snps"] || !pub["family_history"] || !pub["disorders"] {
		t.Fatalf("public labels on prognosis = %v", pub)
	}
	// Analysts may see disorders but not the owner-only attributes.
	an := attrsAt(privacy.Analyst)
	if an["disorders"] || !an["snps"] {
		t.Fatalf("analyst labels on prognosis = %v", an)
	}
	if got := set.LabelsFor(prognosis, privacy.Owner); got != nil {
		t.Fatalf("owner labels = %v", got)
	}
	if set.Items() == 0 || set.Labels() == 0 {
		t.Fatalf("empty set: items=%d labels=%d", set.Items(), set.Labels())
	}
}

func TestRewriteUsesGeneralization(t *testing.T) {
	e, pol := diseaseRun(t)
	h := &datapriv.Hierarchy{
		Attr: "snps",
		Levels: []map[exec.Value]exec.Value{
			{"rs123,rs456": "chr7-region"},
			{"chr7-region": "genome"},
		},
	}
	en := taint.NewEngine(pol, map[string]taint.Generalizer{"snps": h})
	masked, _ := en.Sanitize(e, privacy.Public)
	var sawGeneralized bool
	for id, it := range masked.Items {
		if strings.Contains(string(it.Value), "rs123") {
			t.Fatalf("item %s still embeds raw snps: %q", id, it.Value)
		}
		if it.Attr != "snps" && strings.Contains(string(it.Value), "genome") {
			sawGeneralized = true
		}
	}
	if !sawGeneralized {
		t.Fatal("no derived trace embeds the generalized snps value")
	}
}

// twoNodeExec builds n1 --d1--> n2 with d1 (attr secret) produced by n1
// and d2 (attr out) by n2, the minimal propagation topology.
func twoNodeExec(secret, derived exec.Value) *exec.Execution {
	return &exec.Execution{
		ID: "E", SpecID: "S",
		Nodes: []*exec.Node{{ID: "n1"}, {ID: "n2"}},
		Edges: []exec.Edge{{From: "n1", To: "n2", Items: []string{"d1"}}},
		Items: map[string]*exec.DataItem{
			"d1": {ID: "d1", Attr: "secret", Value: secret, Producer: "n1"},
			"d2": {ID: "d2", Attr: "out", Value: derived, Producer: "n2"},
		},
	}
}

// A raw value that survives its own mask token forces the engine to
// give up on rewriting and redact the whole derived value.
func TestRewriteFallsBackToRedaction(t *testing.T) {
	e := twoNodeExec(":*]", "f(:*])")
	pol := privacy.NewPolicy("S")
	pol.DataLevels["secret"] = privacy.Owner
	masked, rep := taint.NewEngine(pol, nil).Sanitize(e, privacy.Public)
	if rep.TaintRedacted != 1 {
		t.Fatalf("report = %+v, want TaintRedacted 1", rep)
	}
	d2 := masked.Items["d2"]
	if !d2.Redacted || d2.Value != "" {
		t.Fatalf("d2 not redacted: %+v", d2)
	}
}

func TestOverlappingRawsLongestFirst(t *testing.T) {
	e := &exec.Execution{
		ID: "E", SpecID: "S",
		Nodes: []*exec.Node{{ID: "n1"}, {ID: "n2"}},
		Edges: []exec.Edge{{From: "n1", To: "n2", Items: []string{"d1", "d2"}}},
		Items: map[string]*exec.DataItem{
			"d1": {ID: "d1", Attr: "a", Value: "ab", Producer: "n1"},
			"d2": {ID: "d2", Attr: "b", Value: "abc", Producer: "n1"},
			"d3": {ID: "d3", Attr: "out", Value: "f(abc)", Producer: "n2"},
		},
	}
	pol := privacy.NewPolicy("S")
	pol.DataLevels["a"] = privacy.Owner
	pol.DataLevels["b"] = privacy.Owner
	masked, rep := taint.NewEngine(pol, nil).Sanitize(e, privacy.Public)
	// "abc" must be replaced before "ab", otherwise a "c" remnant plus
	// the a-token would garble the trace and leak structure.
	if got := masked.Items["d3"].Value; got != "f([b:*])" {
		t.Fatalf("d3 = %q", got)
	}
	if rep.Rewritten != 1 || rep.Redacted != 2 {
		t.Fatalf("report = %+v", rep)
	}
}

// On a (never valid, but defensive) cyclic execution the engine must
// over-taint rather than under-taint.
func TestCyclicExecutionOverTaints(t *testing.T) {
	e := twoNodeExec("topsecret", "f(topsecret)")
	e.Edges = append(e.Edges, exec.Edge{From: "n2", To: "n1", Items: []string{"d2"}})
	pol := privacy.NewPolicy("S")
	pol.DataLevels["secret"] = privacy.Owner
	en := taint.NewEngine(pol, nil)
	set := en.Analyze(e)
	if set.Items() != len(e.Items) {
		t.Fatalf("cyclic fallback tainted %d of %d items", set.Items(), len(e.Items))
	}
	masked, _ := en.Apply(e, privacy.Public, set)
	if strings.Contains(string(masked.Items["d2"].Value), "topsecret") {
		t.Fatalf("leak through cyclic graph: %q", masked.Items["d2"].Value)
	}
}

func TestApplyDeepCopyNoAliasing(t *testing.T) {
	e, pol := diseaseRun(t)
	en := taint.NewEngine(pol, nil)
	origEdgeItems := append([]string(nil), e.Edges[0].Items...)
	origNodeFrames := append([]exec.Frame(nil), e.Nodes[len(e.Nodes)-1].Frames...)
	masked, _ := en.Sanitize(e, privacy.Public)
	// Vandalize every mutable region of the masked copy.
	for _, n := range masked.Nodes {
		n.ID = "x-" + n.ID
		for i := range n.Frames {
			n.Frames[i].Proc = "vandal"
		}
	}
	for i := range masked.Edges {
		masked.Edges[i].From = "vandal"
		for j := range masked.Edges[i].Items {
			masked.Edges[i].Items[j] = "vandal"
		}
	}
	for _, it := range masked.Items {
		it.Value = "vandal"
		it.Redacted = false
	}
	if e.Edges[0].From == "vandal" || e.Edges[0].Items[0] != origEdgeItems[0] {
		t.Fatal("edge state aliased into the original execution")
	}
	for i, f := range e.Nodes[len(e.Nodes)-1].Frames {
		if f != origNodeFrames[i] {
			t.Fatal("node frames aliased into the original execution")
		}
	}
	for id, it := range e.Items {
		if it.Value == "vandal" {
			t.Fatalf("item %s aliased into the original execution", id)
		}
	}
}

// A nil set degrades to attribute-local masking: the protected item is
// redacted but its raw value is served verbatim inside derived traces —
// exactly the pre-taint hole the DisableTaint escape hatch reopens.
func TestNilSetIsAttributeLocalOnly(t *testing.T) {
	e, pol := diseaseRun(t)
	masked, rep := taint.NewEngine(pol, nil).Apply(e, privacy.Public, nil)
	if rep.Rewritten != 0 || rep.TaintRedacted != 0 {
		t.Fatalf("nil set must not taint: %+v", rep)
	}
	var leaked bool
	for _, it := range masked.Items {
		if it.Attr == "snps" && !it.Redacted {
			t.Fatalf("protected item not masked: %+v", it)
		}
		if strings.Contains(string(it.Value), "rs123") {
			leaked = true
		}
	}
	if !leaked {
		t.Fatal("expected the documented trace leak without taint propagation")
	}
}

func TestReportBucketsAndUtility(t *testing.T) {
	r := taint.Report{Visible: 4, Generalized: 2, Redacted: 1, Rewritten: 2, TaintRedacted: 1}
	if r.Total() != 10 {
		t.Fatalf("total = %d", r.Total())
	}
	want := (4 + 0.75*2 + 0.5*2) / 10.0
	if got := r.UtilityScore(); got != want {
		t.Fatalf("utility = %v, want %v", got, want)
	}
	if (taint.Report{}).UtilityScore() != 1 {
		t.Fatal("empty report should score 1")
	}
}
