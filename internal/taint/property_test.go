package taint_test

// Property tests on randomly generated workflows and policies: the
// end-to-end guarantee is that no item value visible at level L embeds
// (as a substring) the raw value of any protected ancestor whose
// required level exceeds L, and that masking is monotone in level.

import (
	"sort"
	"strings"
	"testing"

	"provpriv/internal/exec"
	"provpriv/internal/graph"
	"provpriv/internal/privacy"
	"provpriv/internal/taint"
	"provpriv/internal/workload"
)

var allLevels = []privacy.Level{privacy.Public, privacy.Registered, privacy.Analyst, privacy.Owner}

// randomTaintedRun builds a random spec, a random policy hardened with
// one guaranteed owner-only workflow input (so taint always has a
// source), and one execution.
func randomTaintedRun(t testing.TB, seed int64) (*exec.Execution, *privacy.Policy) {
	t.Helper()
	s, err := workload.RandomSpec(workload.SpecConfig{
		Seed: seed, Depth: 3, Fanout: 2, Chain: 4, SkipProb: 0.3,
	})
	if err != nil {
		t.Fatalf("seed %d: RandomSpec: %v", seed, err)
	}
	pol, err := workload.RandomPolicy(s, seed)
	if err != nil {
		t.Fatalf("seed %d: RandomPolicy: %v", seed, err)
	}
	inputs := workload.RandomInputs(s, seed)
	attrs := make([]string, 0, len(inputs))
	for a := range inputs {
		attrs = append(attrs, a)
	}
	sort.Strings(attrs)
	pol.DataLevels[attrs[0]] = privacy.Owner // deterministic taint source
	e, err := exec.NewRunner(s, nil).Run("E", inputs)
	if err != nil {
		t.Fatalf("seed %d: Run: %v", seed, err)
	}
	return e, pol
}

// protectedAncestorLeaks is the independent oracle: walking the raw
// execution's closure directly (not the engine's Set), it returns a
// message for each visible masked item embedding a protected ancestor's
// raw value.
func protectedAncestorLeaks(t testing.TB, full, masked *exec.Execution, pol *privacy.Policy, level privacy.Level) []string {
	t.Helper()
	g := full.Graph()
	cl, err := graph.NewClosure(g)
	if err != nil {
		t.Fatalf("closure: %v", err)
	}
	var leaks []string
	for _, srcID := range full.ItemIDs() {
		src := full.Items[srcID]
		if pol.DataLevels[src.Attr] <= level || src.Value == "" {
			continue
		}
		from := g.Lookup(src.Producer)
		if from < 0 {
			t.Fatalf("producer %s not in graph", src.Producer)
		}
		reach := cl.From(from)
		for _, id := range masked.ItemIDs() {
			it := masked.Items[id]
			prod := g.Lookup(full.Items[id].Producer)
			if prod < 0 || !reach.Has(int(prod)) {
				continue // not a descendant of the protected source
			}
			if strings.Contains(string(it.Value), string(src.Value)) {
				leaks = append(leaks, "item "+id+" ("+it.Attr+") embeds "+src.Attr+"="+string(src.Value)+" at "+level.String())
			}
		}
	}
	return leaks
}

func TestRandomWorkflowsNoProtectedAncestorLeak(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		e, pol := randomTaintedRun(t, seed)
		en := taint.NewEngine(pol, nil)
		set := en.Analyze(e)
		for _, lvl := range allLevels {
			masked, rep := en.Apply(e, lvl, set)
			for _, leak := range protectedAncestorLeaks(t, e, masked, pol, lvl) {
				t.Errorf("seed %d: %s", seed, leak)
			}
			if rep.Total() != len(e.Items) {
				t.Fatalf("seed %d level %s: report total %d != %d", seed, lvl, rep.Total(), len(e.Items))
			}
		}
	}
}

// Monotonicity: whatever is served unmodified at level L is served
// unmodified at every higher level, so the per-level Visible counts
// never decrease as privilege grows.
func TestRandomWorkflowsMaskingMonotone(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		e, pol := randomTaintedRun(t, seed)
		en := taint.NewEngine(pol, nil)
		set := en.Analyze(e)
		prevVisible := -1
		var prevUnmodified map[string]bool
		for _, lvl := range allLevels {
			masked, rep := en.Apply(e, lvl, set)
			unmodified := make(map[string]bool)
			for id, it := range masked.Items {
				if !it.Redacted && it.Value == e.Items[id].Value {
					unmodified[id] = true
				}
			}
			for id := range prevUnmodified {
				if !unmodified[id] {
					t.Errorf("seed %d: item %s unmodified at %s but not at %s",
						seed, id, allLevels[indexOf(lvl)-1], lvl)
				}
			}
			if rep.Visible < prevVisible {
				t.Errorf("seed %d: Visible dropped from %d to %d at %s", seed, prevVisible, rep.Visible, lvl)
			}
			prevVisible = rep.Visible
			prevUnmodified = unmodified
		}
	}
}

func indexOf(l privacy.Level) int {
	for i, x := range allLevels {
		if x == l {
			return i
		}
	}
	return -1
}

// FuzzTaintNoLeak drives the same oracle from the fuzzer: arbitrary
// seeds and levels must never produce a protected-ancestor leak.
func FuzzTaintNoLeak(f *testing.F) {
	f.Add(int64(1), uint8(0))
	f.Add(int64(7), uint8(1))
	f.Add(int64(42), uint8(2))
	f.Add(int64(1001), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, lvl uint8) {
		level := allLevels[int(lvl)%len(allLevels)]
		e, pol := randomTaintedRun(t, seed)
		masked, _ := taint.NewEngine(pol, nil).Sanitize(e, level)
		for _, leak := range protectedAncestorLeaks(t, e, masked, pol, level) {
			t.Errorf("seed %d: %s", seed, leak)
		}
	})
}
