// Package taint closes the trace-string privacy hole of attribute-local
// data masking (Section 3 of the CIDR 2011 paper) by propagating
// protection along execution provenance edges — the provenance-graph
// analogue of dataflow taint tracking.
//
// The hole: module outputs are symbolic computation traces that embed
// the module's input values verbatim (see exec.DefaultFunc), so a
// protected *input* value survives inside every derived item's value
// string even after the protected item itself is masked. Observed
// end-to-end: the public provenance of "prognosis" embedded the raw
// "snps" value.
//
// The fix has three phases:
//
//   - seed: every data item whose attribute the policy protects becomes
//     a taint source, labelled with its raw value and required level;
//   - propagate: labels flow along provenance edges via graph
//     reachability — a derived item is tainted by every protected
//     ancestor (over-approximating is safe: sanitization only acts on
//     values that actually embed a tainted raw value);
//   - sanitize: for a viewer below a label's required level, each
//     embedded occurrence of the raw value is rewritten to its
//     generalized form (when the attribute has a generalization
//     hierarchy) or to an attribute-tagged mask token; when rewriting
//     cannot prove the leak is gone the whole value is redacted.
//
// Analysis (seed + propagate) is separated from application so that the
// expensive part — one transitive closure per execution — can be cached:
// a Set computed once on the full execution applies to every collapsed
// view of it at every access level (item ids are stable under
// exec.Collapse, and labels carry their required level so level
// filtering happens at apply time).
package taint

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"provpriv/internal/exec"
	"provpriv/internal/graph"
	"provpriv/internal/privacy"
)

// Generalizer coarsens a value by a number of ladder steps. It is the
// interface slice of datapriv.Hierarchy the engine needs, declared here
// so datapriv can delegate to taint without an import cycle.
type Generalizer interface {
	Generalize(v exec.Value, depth int) exec.Value
	MaxDepth() int
}

// Label marks one protected ancestor whose raw value may be embedded in
// a descendant's trace string.
type Label struct {
	ItemID   string        // the protected source item
	Attr     string        // its attribute
	Required privacy.Level // minimum level allowed to see Raw
	Raw      exec.Value    // the raw value to hunt for in descendants
}

// Set is the result of taint analysis over one execution: for each item
// id, the protected ancestors whose values may leak into it (including
// the source item itself). A nil *Set applies no propagation —
// sanitization degrades to attribute-local masking.
//
// A Set is immutable once Analyze returns and safe to share between
// concurrent Apply calls — internal/repo caches one per (execution,
// policy generation). The compiled sanitizer rides along: the automaton
// over all protected raw values is built once here, not per request.
type Set struct {
	byItem map[string][]Label
	labels int

	// repl is the Aho–Corasick automaton compiled over every seed
	// label's raw value; patIdx maps each item to the indices of the
	// patterns that taint it. Both are nil when nothing is protected.
	repl   *Replacer
	patIdx map[string][]int32
}

// Replacer exposes the compiled multi-pattern sanitizer (nil when the
// analysis found nothing to protect) — benchmarks and tests use it to
// size their expectations.
func (s *Set) Replacer() *Replacer {
	if s == nil {
		return nil
	}
	return s.repl
}

// compile builds the shared automaton from the seed labels and the
// per-item pattern index lists from byItem. seed must contain every
// label that appears in byItem.
func (s *Set) compile(seed []Label) {
	s.repl = compileReplacer(seed)
	type key struct {
		attr string
		raw  string
	}
	idx := make(map[key]int32, len(s.repl.pats))
	for i, p := range s.repl.pats {
		idx[key{p.attr, p.raw}] = int32(i)
	}
	s.patIdx = make(map[string][]int32, len(s.byItem))
	for id, labels := range s.byItem {
		idxs := make([]int32, 0, len(labels))
		for _, l := range labels {
			pi := idx[key{l.Attr, string(l.Raw)}]
			dup := false
			for _, got := range idxs {
				if got == pi {
					dup = true
					break
				}
			}
			if !dup {
				idxs = append(idxs, pi)
			}
		}
		s.patIdx[id] = idxs
	}
}

// LabelsFor returns the labels tainting an item that a viewer at the
// given level is not entitled to, in deterministic order.
func (s *Set) LabelsFor(itemID string, level privacy.Level) []Label {
	if s == nil {
		return nil
	}
	var out []Label
	for _, l := range s.byItem[itemID] {
		if l.Required > level {
			out = append(out, l)
		}
	}
	return out
}

// Items returns how many items carry at least one label.
func (s *Set) Items() int {
	if s == nil {
		return 0
	}
	return len(s.byItem)
}

// Labels returns the total number of (item, label) taint pairs.
func (s *Set) Labels() int {
	if s == nil {
		return 0
	}
	return s.labels
}

// Report accounts for what a sanitization pass did — the utility side of
// the privacy/utility trade-off. Every item lands in exactly one bucket.
type Report struct {
	Visible       int // shown unmodified
	Generalized   int // protected items coarsened via a hierarchy
	Redacted      int // protected items fully masked (no hierarchy, or rewrite failed)
	Rewritten     int // visible items whose embedded tainted values were rewritten
	TaintRedacted int // visible items redacted because rewriting could not remove a leak
}

// Total returns the number of items processed.
func (r Report) Total() int {
	return r.Visible + r.Generalized + r.Redacted + r.Rewritten + r.TaintRedacted
}

// UtilityScore is the fraction of information surviving masking: full
// credit for visible items, 3/4 for rewritten ones (the item's own value
// shape survives, only embedded ancestors are coarsened), half for
// generalized ones, none for redactions.
func (r Report) UtilityScore() float64 {
	t := r.Total()
	if t == 0 {
		return 1
	}
	return (float64(r.Visible) + 0.75*float64(r.Rewritten) + 0.5*float64(r.Generalized)) / float64(t)
}

// Engine seeds, propagates and applies taint for one policy.
type Engine struct {
	Policy *privacy.Policy
	// Generalizers maps attributes to their generalization ladders
	// (typically datapriv.Hierarchy values). Attributes without an entry
	// fall back to mask tokens / full redaction.
	Generalizers map[string]Generalizer
}

// NewEngine builds a taint engine. generalizers may be nil.
func NewEngine(pol *privacy.Policy, generalizers map[string]Generalizer) *Engine {
	return &Engine{Policy: pol, Generalizers: generalizers}
}

func (en *Engine) generalizer(attr string) Generalizer {
	g, ok := en.Generalizers[attr]
	if !ok || g == nil || g.MaxDepth() == 0 {
		return nil
	}
	return g
}

// Analyze seeds taint labels from the policy's protected attributes and
// propagates them along provenance edges: an item is tainted by every
// protected item whose producer reaches its producer. The Set is
// level-independent (labels carry their required level) and applies to
// any collapsed view of e, so it is computed once per execution.
//
// Run Analyze on the *full* execution, not a collapsed view: a protected
// item internal to a collapsed composite is absent from the view's item
// set, but its raw value still rides inside downstream trace strings.
func (en *Engine) Analyze(e *exec.Execution) *Set {
	protected := en.Policy.ProtectedAttrs(privacy.Public)
	set := &Set{byItem: make(map[string][]Label)}
	if len(protected) == 0 {
		return set
	}
	var labels []Label
	for _, id := range e.ItemIDs() {
		it := e.Items[id]
		req, ok := protected[it.Attr]
		// Redacted or empty values cannot leak through substrings.
		if !ok || it.Redacted || it.Value == "" {
			continue
		}
		labels = append(labels, Label{ItemID: id, Attr: it.Attr, Required: req, Raw: it.Value})
	}
	if len(labels) == 0 {
		return set
	}
	g := e.Graph()
	// The closure's bitset arena is the analysis's big transient
	// allocation; recycle it across Analyze calls.
	cb := closurePool.Get().(*closureBuf)
	cl, err := graph.NewClosureScratch(g, cb.words)
	if err != nil {
		closurePool.Put(cb)
		// Validated executions are acyclic; if not, over-taint everything
		// (privacy over utility).
		for id := range e.Items {
			set.byItem[id] = append([]Label(nil), labels...)
			set.labels += len(labels)
		}
		set.compile(labels)
		return set
	}
	itemsAt := e.ItemsByProducer()
	for _, l := range labels {
		src := g.Lookup(e.Items[l.ItemID].Producer)
		if src < 0 {
			continue
		}
		cl.From(src).ForEach(func(n int) {
			for _, it := range itemsAt[g.Name(graph.NodeID(n))] {
				set.byItem[it.ID] = append(set.byItem[it.ID], l)
				set.labels++
			}
		})
	}
	cb.words = cl.Scratch()
	closurePool.Put(cb)
	set.compile(labels)
	return set
}

// closureBuf pools the word arenas backing per-analysis transitive
// closures (see graph.NewClosureScratch).
type closureBuf struct{ words []uint64 }

var closurePool = sync.Pool{New: func() any { return new(closureBuf) }}

// Sanitize is Analyze followed by Apply — the one-shot entry point for
// masking an execution you hold in full.
func (en *Engine) Sanitize(e *exec.Execution, level privacy.Level) (*exec.Execution, Report) {
	return en.Apply(e, level, en.Analyze(e))
}

// Apply returns a deep copy of e masked for a viewer at the given level
// using a precomputed taint set (nil set = attribute-local masking
// only). The copy shares no mutable state with e — nodes, frames, edges
// and item slices are all fresh — so later mutation of either side can
// never corrupt the other.
func (en *Engine) Apply(e *exec.Execution, level privacy.Level, set *Set) (*exec.Execution, Report) {
	var rep Report
	out := &exec.Execution{
		ID:     fmt.Sprintf("%s/masked@%s", e.ID, level),
		SpecID: e.SpecID,
		Nodes:  make([]*exec.Node, 0, len(e.Nodes)),
		Edges:  make([]exec.Edge, 0, len(e.Edges)),
		Items:  make(map[string]*exec.DataItem, len(e.Items)),
	}
	for _, n := range e.Nodes {
		cp := *n
		cp.Frames = append([]exec.Frame(nil), n.Frames...)
		out.Nodes = append(out.Nodes, &cp)
	}
	for _, ed := range e.Edges {
		out.Edges = append(out.Edges, exec.Edge{
			From: ed.From, To: ed.To, Items: append([]string(nil), ed.Items...),
		})
	}
	ap := acquireApplier(en, set, level)
	defer ap.release()
	for id, it := range e.Items {
		cp := *it
		out.Items[id] = &cp
		required := en.Policy.DataLevels[it.Attr]
		ap.activate(id)
		if level >= required {
			// Attribute visible at this level; embedded protected
			// ancestors may still leak through the trace string.
			v, changed, clean := ap.rewrite(it.Value)
			switch {
			case !clean:
				cp.Value, cp.Redacted = "", true
				rep.TaintRedacted++
			case changed:
				cp.Value = v
				rep.Rewritten++
			default:
				rep.Visible++
			}
			continue
		}
		// The item itself is protected: generalize when a ladder exists.
		// The generalized form of a *derived* protected item may still
		// embed protected ancestors, so it passes through the same
		// rewrite-and-verify gate (which also catches a ladder whose
		// output contains the item's own raw value).
		if g := en.generalizer(it.Attr); g != nil {
			gen := g.Generalize(it.Value, int(required-level))
			if v, _, clean := ap.rewrite(gen); clean {
				cp.Value = v
				rep.Generalized++
				continue
			}
		}
		cp.Value, cp.Redacted = "", true
		rep.Redacted++
	}
	return out, rep
}

// applier is the pooled per-Apply working state of the compiled
// sanitizer: the active-pattern bitset for the item being masked, the
// lazily filled per-level replacement table, and the two closures handed
// to the automaton (created once per Apply, not per item).
type applier struct {
	en    *Engine
	set   *Set
	level privacy.Level

	active  []uint64 // bitset over the replacer's patterns
	marked  []int32  // bits set for the current item, for O(k) clearing
	repl    []exec.Value
	replSet []bool
	n       int // active patterns for the current item

	isActive func(int32) bool
	replFor  func(int32) string
}

var applierPool = sync.Pool{New: func() any { return new(applier) }}

func acquireApplier(en *Engine, set *Set, level privacy.Level) *applier {
	ap := applierPool.Get().(*applier)
	ap.en, ap.set, ap.level = en, set, level
	nPats := 0
	if set != nil && set.repl != nil {
		nPats = len(set.repl.pats)
	}
	words := (nPats + 63) / 64
	if cap(ap.active) < words {
		ap.active = make([]uint64, words)
	} else {
		ap.active = ap.active[:words]
		for i := range ap.active {
			ap.active[i] = 0
		}
	}
	if cap(ap.repl) < nPats {
		ap.repl = make([]exec.Value, nPats)
		ap.replSet = make([]bool, nPats)
	} else {
		ap.repl = ap.repl[:nPats]
		ap.replSet = ap.replSet[:nPats]
		for i := range ap.replSet {
			ap.replSet[i] = false
		}
	}
	ap.marked = ap.marked[:0]
	if ap.isActive == nil {
		ap.isActive = func(p int32) bool { return ap.active[p/64]&(1<<(uint(p)%64)) != 0 }
		ap.replFor = func(p int32) string {
			if !ap.replSet[p] {
				pt := ap.set.repl.pats[p]
				ap.repl[p] = ap.en.replacement(
					Label{Attr: pt.attr, Raw: exec.Value(pt.raw), Required: pt.required}, ap.level)
				ap.replSet[p] = true
			}
			return string(ap.repl[p])
		}
	}
	return ap
}

func (ap *applier) release() {
	ap.en, ap.set = nil, nil
	applierPool.Put(ap)
}

// activate arms the patterns tainting the given item that the viewer's
// level is not entitled to, clearing the previous item's first.
func (ap *applier) activate(itemID string) {
	for _, p := range ap.marked {
		ap.active[p/64] &^= 1 << (uint(p) % 64)
	}
	ap.marked = ap.marked[:0]
	ap.n = 0
	if ap.set == nil || ap.set.repl == nil {
		return
	}
	for _, p := range ap.set.patIdx[itemID] {
		if ap.set.repl.pats[p].required > ap.level {
			ap.active[p/64] |= 1 << (uint(p) % 64)
			ap.marked = append(ap.marked, p)
			ap.n++
		}
	}
}

// rewrite sanitizes one value against the currently activated patterns.
// Same contract as the replacer's rewrite; items with no active pattern
// short-circuit without touching the automaton.
func (ap *applier) rewrite(v exec.Value) (exec.Value, bool, bool) {
	if ap.n == 0 {
		return v, false, true
	}
	out, changed, clean := ap.set.repl.rewrite(string(v), ap.n, ap.isActive, ap.replFor)
	return exec.Value(out), changed, clean
}

// replacement is the stand-in for one tainted value: the generalization
// of the raw value at the viewer's level gap when the attribute has a
// ladder and the generalized form actually drops the raw value, else an
// attribute-tagged mask token.
func (en *Engine) replacement(l Label, level privacy.Level) exec.Value {
	if g := en.generalizer(l.Attr); g != nil {
		gen := g.Generalize(l.Raw, int(l.Required-level))
		if !strings.Contains(string(gen), string(l.Raw)) {
			return gen
		}
	}
	return exec.Value("[" + l.Attr + ":*]")
}

// dedupeLabels drops duplicate (attr, raw) pairs and orders by
// descending raw length (so a raw that contains another raw is replaced
// first), breaking ties lexicographically for determinism.
func dedupeLabels(labels []Label) []Label {
	type key struct {
		attr string
		raw  exec.Value
	}
	seen := make(map[key]bool, len(labels))
	out := make([]Label, 0, len(labels))
	for _, l := range labels {
		k := key{l.Attr, l.Raw}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Raw) != len(out[j].Raw) {
			return len(out[i].Raw) > len(out[j].Raw)
		}
		if out[i].Attr != out[j].Attr {
			return out[i].Attr < out[j].Attr
		}
		return out[i].Raw < out[j].Raw
	})
	return out
}
