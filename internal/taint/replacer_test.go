package taint

// Differential harness for the compiled sanitizer: the pre-compiled
// implementation — one strings.Contains/ReplaceAll pass per protected
// label — is preserved here as the executable specification, and the
// Aho–Corasick replacer is required to be byte-identical to it across
// the same randomized workflow corpus the leak property tests use, at
// every access level, with and without generalization ladders.

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"provpriv/internal/exec"
	"provpriv/internal/privacy"
	"provpriv/internal/workload"
)

// referenceRewrite is the original per-label rewrite loop, verbatim.
func referenceRewrite(en *Engine, v exec.Value, level privacy.Level, labels []Label) (exec.Value, bool, bool) {
	if len(labels) == 0 {
		return v, false, true
	}
	labels = dedupeLabels(labels)
	s := string(v)
	changed := false
	for _, l := range labels {
		raw := string(l.Raw)
		if !strings.Contains(s, raw) {
			continue
		}
		s = strings.ReplaceAll(s, raw, string(en.replacement(l, level)))
		changed = true
	}
	for _, l := range labels {
		if strings.Contains(s, string(l.Raw)) {
			return v, changed, false
		}
	}
	return exec.Value(s), changed, true
}

// referenceApply is the original Apply masking loop driving
// referenceRewrite through Set.LabelsFor.
func referenceApply(en *Engine, e *exec.Execution, level privacy.Level, set *Set) (map[string]exec.DataItem, Report) {
	var rep Report
	out := make(map[string]exec.DataItem, len(e.Items))
	for id, it := range e.Items {
		cp := *it
		required := en.Policy.DataLevels[it.Attr]
		labels := set.LabelsFor(id, level)
		if level >= required {
			v, changed, clean := referenceRewrite(en, it.Value, level, labels)
			switch {
			case !clean:
				cp.Value, cp.Redacted = "", true
				rep.TaintRedacted++
			case changed:
				cp.Value = v
				rep.Rewritten++
			default:
				rep.Visible++
			}
			out[id] = cp
			continue
		}
		if g := en.generalizer(it.Attr); g != nil {
			gen := g.Generalize(it.Value, int(required-level))
			if v, _, clean := referenceRewrite(en, gen, level, labels); clean {
				cp.Value = v
				rep.Generalized++
				out[id] = cp
				continue
			}
		}
		cp.Value, cp.Redacted = "", true
		rep.Redacted++
		out[id] = cp
	}
	return out, rep
}

func diffOne(t *testing.T, tag string, en *Engine, e *exec.Execution, level privacy.Level) {
	t.Helper()
	set := en.Analyze(e)
	masked, rep := en.Apply(e, level, set)
	want, wantRep := referenceApply(en, e, level, set)
	if rep != wantRep {
		t.Errorf("%s @%s: report %+v, reference %+v", tag, level, rep, wantRep)
	}
	for id, w := range want {
		got := masked.Items[id]
		if got == nil {
			t.Errorf("%s @%s: item %s missing from compiled output", tag, id, level)
			continue
		}
		if got.Value != w.Value || got.Redacted != w.Redacted {
			t.Errorf("%s @%s: item %s = (%q, redacted=%v), reference (%q, redacted=%v)",
				tag, level, id, got.Value, got.Redacted, w.Value, w.Redacted)
		}
	}
}

func corpusRun(t testing.TB, seed int64) (*exec.Execution, *privacy.Policy) {
	t.Helper()
	s, err := workload.RandomSpec(workload.SpecConfig{
		Seed: seed, Depth: 3, Fanout: 2, Chain: 4, SkipProb: 0.3,
	})
	if err != nil {
		t.Fatalf("seed %d: RandomSpec: %v", seed, err)
	}
	pol, err := workload.RandomPolicy(s, seed)
	if err != nil {
		t.Fatalf("seed %d: RandomPolicy: %v", seed, err)
	}
	inputs := workload.RandomInputs(s, seed)
	attrs := make([]string, 0, len(inputs))
	for a := range inputs {
		attrs = append(attrs, a)
	}
	sort.Strings(attrs)
	pol.DataLevels[attrs[0]] = privacy.Owner
	e, err := exec.NewRunner(s, nil).Run("E", inputs)
	if err != nil {
		t.Fatalf("seed %d: Run: %v", seed, err)
	}
	return e, pol
}

// ladder is a minimal test Generalizer: every value coarsens to one
// fixed form per depth.
type ladder struct {
	depth int
	form  string
}

func (l ladder) Generalize(v exec.Value, depth int) exec.Value {
	if depth <= 0 {
		return v
	}
	return exec.Value(fmt.Sprintf("%s<%d>", l.form, min(depth, l.depth)))
}

func (l ladder) MaxDepth() int { return l.depth }

var diffLevels = []privacy.Level{privacy.Public, privacy.Registered, privacy.Analyst, privacy.Owner}

// TestCompiledSanitizerMatchesReference is the differential property
// test of the acceptance criteria: across the randomized corpus, every
// access level, with no generalizers and with a ladder on every
// protected attribute, the compiled single-pass sanitizer produces
// byte-identical values, redaction flags and reports to the sequential
// per-label loop.
func TestCompiledSanitizerMatchesReference(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		e, pol := corpusRun(t, seed)
		plain := NewEngine(pol, nil)
		gens := make(map[string]Generalizer)
		for attr := range pol.DataLevels {
			gens[attr] = ladder{depth: 3, form: "gen:" + attr}
		}
		laddered := NewEngine(pol, gens)
		for _, lvl := range diffLevels {
			diffOne(t, fmt.Sprintf("seed=%d/plain", seed), plain, e, lvl)
			diffOne(t, fmt.Sprintf("seed=%d/ladder", seed), laddered, e, lvl)
		}
	}
}

// FuzzSanitizerDifferential extends the taint fuzz corpus to the
// compiled/reference equivalence (the leak oracle itself is fuzzed by
// FuzzTaintNoLeak in property_test.go, which now exercises the compiled
// path end to end).
func FuzzSanitizerDifferential(f *testing.F) {
	f.Add(int64(1), uint8(0))
	f.Add(int64(7), uint8(1))
	f.Add(int64(42), uint8(2))
	f.Add(int64(1001), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, lvl uint8) {
		level := diffLevels[int(lvl)%len(diffLevels)]
		e, pol := corpusRun(t, seed)
		diffOne(t, fmt.Sprintf("fuzz seed=%d", seed), NewEngine(pol, nil), e, level)
	})
}

// synthetic labels for automaton unit tests.
func mkLabels(pairs ...[2]string) []Label {
	out := make([]Label, 0, len(pairs))
	for i, p := range pairs {
		out = append(out, Label{
			ItemID: fmt.Sprintf("d%d", i), Attr: p[0], Required: privacy.Owner, Raw: exec.Value(p[1]),
		})
	}
	return out
}

func rewriteAll(r *Replacer, s string) (string, bool, bool) {
	active := func(int32) bool { return true }
	repl := func(p int32) string { return "[" + r.pats[p].attr + ":*]" }
	return r.rewrite(s, len(r.pats), active, repl)
}

// rewriteAllAC forces the Aho–Corasick tier regardless of pattern count
// (nActive only selects the tier; correctness must not depend on it).
func rewriteAllAC(r *Replacer, s string) (string, bool, bool) {
	active := func(int32) bool { return true }
	repl := func(p int32) string { return "[" + r.pats[p].attr + ":*]" }
	return r.rewrite(s, acThreshold+1, active, repl)
}

func TestReplacerLongestMatchWins(t *testing.T) {
	r := compileReplacer(mkLabels([2]string{"a", "v1"}, [2]string{"b", "v12"}))
	for tier, rw := range map[string]func(*Replacer, string) (string, bool, bool){
		"index": rewriteAll, "ac": rewriteAllAC,
	} {
		// "v12" must win over its prefix "v1" where both start.
		got, changed, clean := rw(r, "x=v12;y=v1;")
		if want := "x=[b:*];y=[a:*];"; got != want || !changed || !clean {
			t.Fatalf("%s: rewrite = (%q, %v, %v), want (%q, true, true)", tier, got, changed, clean, want)
		}
	}
}

func TestReplacerSuffixPatternViaOutLink(t *testing.T) {
	// "12" only ever matches as a suffix of text the automaton reaches
	// through the longer pattern's path — the output-link chain must
	// surface it, and the vectorized tier must agree.
	r := compileReplacer(mkLabels([2]string{"long", "xy12"}, [2]string{"short", "12"}))
	for tier, rw := range map[string]func(*Replacer, string) (string, bool, bool){
		"index": rewriteAll, "ac": rewriteAllAC,
	} {
		got, _, clean := rw(r, "a12b xy12 c")
		if want := "a[short:*]b [long:*] c"; got != want || !clean {
			t.Fatalf("%s: rewrite = (%q, clean=%v), want (%q, true)", tier, got, clean, want)
		}
		// And inside a *failed* long-pattern prefix: "xy1" then "2".
		if got, _, _ := rw(r, "xy12"); got != "[long:*]" {
			t.Fatalf("%s: rewrite(xy12) = %q", tier, got)
		}
	}
}

// TestReplacerOverlappingSelfMatches pins the step-by-one marking: an
// equal-priority pattern pair where the second occurrence of one
// overlaps the first's span must resolve identically in both tiers (and
// to the sequential reference).
func TestReplacerOverlappingSelfMatches(t *testing.T) {
	r := compileReplacer(mkLabels([2]string{"a", "xa"}, [2]string{"b", "aa"}))
	for tier, rw := range map[string]func(*Replacer, string) (string, bool, bool){
		"index": rewriteAll, "ac": rewriteAllAC,
	} {
		got, _, clean := rw(r, "xaaa")
		if want := "[a:*][b:*]"; got != want || !clean {
			t.Fatalf("%s: rewrite(xaaa) = (%q, clean=%v), want %q", tier, got, clean, want)
		}
	}
}

func TestReplacerSameRawTwoAttrsPriority(t *testing.T) {
	// Two labels share a raw; the attr-lexicographic first claims every
	// occurrence, as sequential ReplaceAll did. If it is inactive, the
	// second takes over.
	r := compileReplacer(mkLabels([2]string{"beta", "v7"}, [2]string{"alpha", "v7"}))
	got, _, _ := rewriteAll(r, "v7")
	if got != "[alpha:*]" {
		t.Fatalf("priority winner = %q, want [alpha:*]", got)
	}
	onlyBeta := func(p int32) bool { return r.pats[p].attr == "beta" }
	for _, n := range []int{1, acThreshold + 1} {
		got2, _, _ := r.rewrite("v7", n, onlyBeta, func(p int32) string { return "[" + r.pats[p].attr + ":*]" })
		if got2 != "[beta:*]" {
			t.Fatalf("fallback winner (nActive=%d) = %q, want [beta:*]", n, got2)
		}
	}
}

// TestReplacerTiersAgreeOnCorpus: both mark tiers produce identical
// output on real trace strings with every pattern active.
func TestReplacerTiersAgreeOnCorpus(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		e, pol := corpusRun(t, seed)
		set := NewEngine(pol, nil).Analyze(e)
		r := set.Replacer()
		if r == nil || r.Patterns() == 0 {
			continue
		}
		for _, id := range e.ItemIDs() {
			v := string(e.Items[id].Value)
			gi, ci, ki := rewriteAll(r, v)
			ga, ca, ka := rewriteAllAC(r, v)
			if gi != ga || ci != ca || ki != ka {
				t.Fatalf("seed %d item %s: tiers disagree: index=(%q,%v,%v) ac=(%q,%v,%v)",
					seed, id, gi, ci, ki, ga, ca, ka)
			}
		}
	}
}

func TestReplacerVerifyRedactsSurvivingRaw(t *testing.T) {
	// A replacement that embeds an active raw value (here: its own) must
	// fail verification: the caller sees clean=false and the original
	// value back, and redacts — never a partial leak. Same contract as
	// the sequential loop's post-ReplaceAll Contains sweep.
	r := compileReplacer(mkLabels([2]string{"a", "v1"}))
	got, changed, clean := rewriteAll2(r, "only v1 here", "xv1y")
	if clean || !changed || got != "only v1 here" {
		t.Fatalf("rewrite = (%q, %v, clean=%v), want original + changed + unclean", got, changed, clean)
	}
	// An *inactive* pattern surviving in the output is fine — it is not
	// protected for this viewer, and the reference loop never checked
	// labels it was not given either.
	r2 := compileReplacer(mkLabels([2]string{"a", "v1"}, [2]string{"b", "zz"}))
	onlyA := func(p int32) bool { return r2.pats[p].attr == "a" }
	got, _, clean = r2.rewrite("only v1 here", 1, onlyA, func(int32) string { return "zz" })
	if !clean || got != "only zz here" {
		t.Fatalf("inactive-pattern output = (%q, clean=%v), want (\"only zz here\", true)", got, clean)
	}
}

func rewriteAll2(r *Replacer, s, repl string) (string, bool, bool) {
	return r.rewrite(s, len(r.pats), func(int32) bool { return true }, func(int32) string { return repl })
}

func TestReplacerInactivePatternsUntouched(t *testing.T) {
	r := compileReplacer(mkLabels([2]string{"a", "v1"}, [2]string{"b", "v2"}))
	onlyA := func(p int32) bool { return r.pats[p].attr == "a" }
	got, changed, clean := r.rewrite("v1 and v2", 1, onlyA, func(int32) string { return "[x]" })
	if got != "[x] and v2" || !changed || !clean {
		t.Fatalf("rewrite = (%q, %v, %v)", got, changed, clean)
	}
	got, changed, clean = r.rewrite("only v2", 1, onlyA, func(int32) string { return "[x]" })
	if got != "only v2" || changed || !clean {
		t.Fatalf("no-active-match fast path = (%q, %v, %v)", got, changed, clean)
	}
}

func TestReplacerEmpty(t *testing.T) {
	r := compileReplacer(nil)
	if got, changed, clean := rewriteAll(r, "anything"); got != "anything" || changed || !clean {
		t.Fatalf("empty replacer rewrote: (%q, %v, %v)", got, changed, clean)
	}
	if r.Patterns() != 0 {
		t.Fatalf("Patterns = %d", r.Patterns())
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
