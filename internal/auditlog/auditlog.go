// Package auditlog is the append-only mutation audit log: who changed
// what, when, with what outcome — provenance for the provenance store
// itself. Every mutation request (including denied ones) becomes
// exactly one Record, durably appended through a storage.Backend before
// the append returns, and queryable newest-first from an in-memory
// ring via the admin audit endpoint.
//
// The log deliberately reuses the crash-safe storage contract from
// internal/storage instead of inventing a file format: records are
// CRC-framed appends under a committed extent, so a torn tail from a
// crash mid-append is truncated on reopen, never misread. It lives in
// its own backend directory (one shard, "audit") — repository shards
// hold typed engine records and their loader rejects foreign types, so
// the two must not share a directory.
//
// Secrets never enter the log: callers record token *names* and
// principal names only.
package auditlog

import (
	"encoding/json"
	"fmt"
	"strconv"
	"sync"
	"time"

	"provpriv/internal/storage"
)

// shard is the single shard name the log writes under.
const shard = "audit"

// ringSize bounds the in-memory query window. The durable log is
// unbounded; the ring is what the admin endpoint can page through
// without replaying the backend.
const ringSize = 1024

// Record is one audited mutation attempt.
type Record struct {
	// Seq is the record's position in the log, 1-based and strictly
	// increasing across restarts.
	Seq uint64 `json:"seq"`
	// Time is when the mutation finished, UTC.
	Time time.Time `json:"time"`
	// RequestID is the obs-assigned request id, threading the audit
	// entry to the request trace and the client's error envelope.
	RequestID string `json:"request_id,omitempty"`
	// Principal is who asked: the repository user the request
	// authenticated as (empty when authentication itself failed).
	Principal string `json:"principal,omitempty"`
	// Token is the bearer token's name, when one was presented.
	Token string `json:"token,omitempty"`
	// Role is the authenticated role, empty on auth failure.
	Role string `json:"role,omitempty"`
	// Action is the mutation class, e.g. "spec.add" or "token.remove".
	Action string `json:"action"`
	// Target is the acted-on entity (spec id, execution id, token
	// name), when the handler resolved one.
	Target string `json:"target,omitempty"`
	// Status is the HTTP status the request finished with.
	Status int `json:"status"`
	// Outcome classifies Status: "ok" (2xx), "denied" (401/403),
	// "rejected" (other 4xx), "error" (5xx).
	Outcome string `json:"outcome"`
}

// OutcomeFor classifies an HTTP status for Record.Outcome.
func OutcomeFor(status int) string {
	switch {
	case status >= 200 && status < 300:
		return "ok"
	case status == 401 || status == 403:
		return "denied"
	case status >= 400 && status < 500:
		return "rejected"
	default:
		return "error"
	}
}

// Log is the durable audit log. Appends serialize under one mutex —
// audit throughput is bounded by mutation throughput, which is already
// serialized per shard upstream, so a single writer lock is not the
// bottleneck; it buys strictly ordered sequence numbers and a simple
// durability story (one Commit per append).
type Log struct {
	mu     sync.Mutex
	b      storage.Backend
	gen    uint64
	logLen uint64
	seq    uint64
	total  uint64

	ring  [ringSize]Record
	ringN int // records in ring (≤ ringSize)
}

// Open attaches to (or initializes) an audit log on b. Committed
// records are replayed to reseed the sequence counter and the query
// ring; an uncommitted torn tail is discarded by the storage contract.
// The Log takes ownership of b: Close closes it.
func Open(b storage.Backend) (*Log, error) {
	meta, err := b.Meta()
	if err != nil {
		return nil, fmt.Errorf("auditlog: read meta: %w", err)
	}
	l := &Log{b: b}
	info, ok := meta.Shards[shard]
	if !ok {
		// Fresh log: commit an empty checkpoint so the shard exists and
		// every later append is just Append+Commit.
		l.gen = meta.Generation + 1
		if err := b.WriteCheckpoint(shard, l.gen, nil); err != nil {
			return nil, fmt.Errorf("auditlog: init checkpoint: %w", err)
		}
		if err := b.Commit(storage.Meta{
			Generation: l.gen,
			Shards:     map[string]storage.ShardInfo{shard: {Checkpoint: l.gen}},
		}); err != nil {
			return nil, fmt.Errorf("auditlog: init commit: %w", err)
		}
		return l, nil
	}
	l.gen = info.Checkpoint
	l.logLen = info.LogLen
	err = b.ReplayLog(shard, l.gen, l.logLen, func(rec storage.Record) error {
		if rec.Type != storage.RecAudit {
			return fmt.Errorf("auditlog: unexpected %v record in audit log", rec.Type)
		}
		var r Record
		if err := json.Unmarshal(rec.Data, &r); err != nil {
			return fmt.Errorf("auditlog: decode record %s: %w", rec.Key, err)
		}
		if r.Seq > l.seq {
			l.seq = r.Seq
		}
		l.total++
		l.push(r)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return l, nil
}

// push adds r to the ring (caller holds mu, or is still single-threaded
// in Open).
func (l *Log) push(r Record) {
	if l.ringN < ringSize {
		l.ring[l.ringN] = r
		l.ringN++
		return
	}
	copy(l.ring[:], l.ring[1:])
	l.ring[ringSize-1] = r
}

// Append assigns the record's sequence number, timestamp and outcome
// (when unset), durably appends it, and commits. The record is
// queryable and crash-survivable once Append returns.
func (l *Log) Append(r Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	r.Seq = l.seq
	if r.Time.IsZero() {
		r.Time = time.Now().UTC()
	}
	if r.Outcome == "" {
		r.Outcome = OutcomeFor(r.Status)
	}
	data, err := json.Marshal(r)
	if err != nil {
		l.seq--
		return fmt.Errorf("auditlog: encode: %w", err)
	}
	newLen, err := l.b.Append(shard, l.gen, l.logLen, []storage.Record{{
		Type: storage.RecAudit,
		Key:  strconv.FormatUint(r.Seq, 10),
		Data: data,
	}})
	if err != nil {
		l.seq-- // the record never happened
		return fmt.Errorf("auditlog: append: %w", err)
	}
	if err := l.b.Commit(storage.Meta{
		Generation: l.gen,
		Shards:     map[string]storage.ShardInfo{shard: {Checkpoint: l.gen, LogLen: newLen}},
	}); err != nil {
		l.seq--
		return fmt.Errorf("auditlog: commit: %w", err)
	}
	l.logLen = newLen
	l.total++
	l.push(r)
	return nil
}

// Query filters Recent results.
type Query struct {
	// Principal, when non-empty, keeps only records by that principal.
	Principal string
	// Action, when non-empty, keeps only records with that action.
	Action string
	// Limit caps the returned slice (0 or negative = 100; hard cap is
	// the window size).
	Limit int
}

// Recent returns matching records from the in-memory window, newest
// first, plus the total number of records ever appended (so callers
// can tell the window from the full history).
func (l *Log) Recent(q Query) (recs []Record, total uint64) {
	limit := q.Limit
	if limit <= 0 {
		limit = 100
	}
	if limit > ringSize {
		limit = ringSize
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	recs = make([]Record, 0, min(limit, l.ringN))
	for i := l.ringN - 1; i >= 0 && len(recs) < limit; i-- {
		r := l.ring[i]
		if q.Principal != "" && r.Principal != q.Principal {
			continue
		}
		if q.Action != "" && r.Action != q.Action {
			continue
		}
		recs = append(recs, r)
	}
	return recs, l.total
}

// Total returns how many records the log has ever recorded (including
// ones rotated out of the query window).
func (l *Log) Total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Close releases the backend.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Close()
}
