package auditlog

import (
	"fmt"
	"testing"

	"provpriv/internal/storage"
)

func openTestLog(t *testing.T, dir string) *Log {
	t.Helper()
	b, err := storage.OpenFlat(dir)
	if err != nil {
		t.Fatal(err)
	}
	l, err := Open(b)
	if err != nil {
		b.Close()
		t.Fatal(err)
	}
	return l
}

// TestAppendAssignsFields: Append fills seq, time and outcome; sequence
// numbers are 1-based and strictly increasing.
func TestAppendAssignsFields(t *testing.T) {
	l := openTestLog(t, t.TempDir())
	defer l.Close()

	if err := l.Append(Record{Principal: "alice", Action: "spec.add", Status: 201}); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{Principal: "bob", Action: "spec.remove", Status: 403}); err != nil {
		t.Fatal(err)
	}
	recs, total := l.Recent(Query{})
	if total != 2 || len(recs) != 2 {
		t.Fatalf("total=%d len=%d, want 2/2", total, len(recs))
	}
	// Newest first.
	if recs[0].Seq != 2 || recs[1].Seq != 1 {
		t.Fatalf("seqs = %d,%d, want 2,1", recs[0].Seq, recs[1].Seq)
	}
	if recs[0].Outcome != "denied" || recs[1].Outcome != "ok" {
		t.Fatalf("outcomes = %q,%q, want denied,ok", recs[0].Outcome, recs[1].Outcome)
	}
	if recs[0].Time.IsZero() || recs[1].Time.IsZero() {
		t.Fatal("Append left Time zero")
	}
}

// TestReopenSurvivesRestart: records are durable and the sequence
// counter continues where it left off after a close/reopen.
func TestReopenSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	l := openTestLog(t, dir)
	for i := 0; i < 3; i++ {
		if err := l.Append(Record{Principal: "alice", Action: "spec.add", Status: 201}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l = openTestLog(t, dir)
	defer l.Close()
	recs, total := l.Recent(Query{})
	if total != 3 || len(recs) != 3 {
		t.Fatalf("after reopen: total=%d len=%d, want 3/3", total, len(recs))
	}
	if err := l.Append(Record{Principal: "alice", Action: "spec.remove", Status: 200}); err != nil {
		t.Fatal(err)
	}
	recs, total = l.Recent(Query{})
	if total != 4 || recs[0].Seq != 4 {
		t.Fatalf("post-reopen append: total=%d seq=%d, want 4/4 (sequence continues)", total, recs[0].Seq)
	}
}

// TestRingRotation: the durable total keeps counting past the query
// window; the window holds the newest ringSize records.
func TestRingRotation(t *testing.T) {
	l := openTestLog(t, t.TempDir())
	defer l.Close()
	const n = ringSize + 10
	for i := 0; i < n; i++ {
		if err := l.Append(Record{Principal: "alice", Action: "exec.add", Status: 201}); err != nil {
			t.Fatal(err)
		}
	}
	recs, total := l.Recent(Query{Limit: ringSize})
	if total != n {
		t.Fatalf("total = %d, want %d", total, n)
	}
	if len(recs) != ringSize {
		t.Fatalf("window = %d records, want %d", len(recs), ringSize)
	}
	if recs[0].Seq != n || recs[len(recs)-1].Seq != n-ringSize+1 {
		t.Fatalf("window spans seq %d..%d, want %d..%d",
			recs[len(recs)-1].Seq, recs[0].Seq, n-ringSize+1, n)
	}
}

// TestRecentFilters: principal/action filters and the limit cap.
func TestRecentFilters(t *testing.T) {
	l := openTestLog(t, t.TempDir())
	defer l.Close()
	for i := 0; i < 6; i++ {
		p := "alice"
		if i%2 == 1 {
			p = "bob"
		}
		a := "spec.add"
		if i%3 == 0 {
			a = "policy.update"
		}
		if err := l.Append(Record{Principal: p, Action: a, Status: 200, Target: fmt.Sprintf("t%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	recs, _ := l.Recent(Query{Principal: "bob"})
	if len(recs) != 3 {
		t.Fatalf("bob records = %d, want 3", len(recs))
	}
	for _, r := range recs {
		if r.Principal != "bob" {
			t.Fatalf("filter leaked record for %q", r.Principal)
		}
	}
	recs, _ = l.Recent(Query{Action: "policy.update"})
	if len(recs) != 2 {
		t.Fatalf("policy.update records = %d, want 2", len(recs))
	}
	recs, _ = l.Recent(Query{Limit: 2})
	if len(recs) != 2 || recs[0].Seq != 6 {
		t.Fatalf("limit 2: got %d records, newest seq %d", len(recs), recs[0].Seq)
	}
}

// TestOutcomeFor pins the status classification.
func TestOutcomeFor(t *testing.T) {
	cases := map[int]string{
		200: "ok", 201: "ok", 202: "ok",
		401: "denied", 403: "denied",
		400: "rejected", 404: "rejected", 409: "rejected", 413: "rejected", 429: "rejected",
		500: "error", 503: "error",
	}
	for status, want := range cases {
		if got := OutcomeFor(status); got != want {
			t.Fatalf("OutcomeFor(%d) = %q, want %q", status, got, want)
		}
	}
}
