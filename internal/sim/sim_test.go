package sim

import (
	"fmt"
	"testing"

	"provpriv/internal/exec"
	"provpriv/internal/privacy"
	"provpriv/internal/repo"
	"provpriv/internal/workflow"
	"provpriv/internal/workload"
)

func simRepo(t *testing.T) (*repo.Repository, []privacy.User) {
	t.Helper()
	r := repo.New()
	disease := workflow.DiseaseSusceptibility()
	pol := privacy.NewPolicy(disease.ID)
	pol.DataLevels["snps"] = privacy.Owner
	pol.ModuleLevels["M6"] = privacy.Owner
	pol.ViewGrants[privacy.Registered] = []string{"W2", "W3", "W4"}
	if err := r.AddSpec(disease, pol); err != nil {
		t.Fatalf("AddSpec: %v", err)
	}
	e, err := exec.NewRunner(disease, nil).Run("E1", map[string]exec.Value{
		"snps": "rs1", "ethnicity": "e", "lifestyle": "l",
		"family_history": "f", "symptoms": "s",
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := r.AddExecution(e); err != nil {
		t.Fatalf("AddExecution: %v", err)
	}
	for i := 0; i < 2; i++ {
		s, err := workload.RandomSpec(workload.SpecConfig{
			Seed: int64(i), ID: fmt.Sprintf("s%d", i), Depth: 3, Fanout: 2, Chain: 4,
		})
		if err != nil {
			t.Fatalf("RandomSpec: %v", err)
		}
		sp, err := workload.RandomPolicy(s, int64(i))
		if err != nil {
			t.Fatalf("RandomPolicy: %v", err)
		}
		if err := r.AddSpec(s, sp); err != nil {
			t.Fatalf("AddSpec: %v", err)
		}
		ee, err := exec.NewRunner(s, nil).Run(fmt.Sprintf("s%d-E0", i), workload.RandomInputs(s, int64(i)))
		if err != nil {
			t.Fatalf("Run synth: %v", err)
		}
		if err := r.AddExecution(ee); err != nil {
			t.Fatalf("AddExecution synth: %v", err)
		}
	}
	users := []privacy.User{
		{Name: "u0", Level: privacy.Public, Group: "g0"},
		{Name: "u1", Level: privacy.Registered, Group: "g1"},
		{Name: "u2", Level: privacy.Owner, Group: "g2"},
	}
	for _, u := range users {
		r.AddUser(u)
	}
	return r, users
}

func TestSimulationRunsWithoutLeaks(t *testing.T) {
	r, users := simRepo(t)
	res, err := Run(r, Config{Seed: 1, Ops: 400, Users: users})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Ops != 400 {
		t.Fatalf("ops = %d", res.Ops)
	}
	if res.LeakIncidents != 0 {
		t.Fatalf("LEAKS DETECTED: %d", res.LeakIncidents)
	}
	// All kinds exercised under the default mix.
	for kind, st := range res.ByKind {
		if st.Ops == 0 {
			t.Fatalf("kind %s never exercised", kind)
		}
	}
	// Some operations answered.
	if res.ByKind[OpSearch].Answered == 0 {
		t.Fatal("no search ever answered")
	}
	if res.ByKind[OpProvenance].Answered == 0 {
		t.Fatal("no provenance ever answered")
	}
}

func TestSimulationDeterministicCounts(t *testing.T) {
	r1, users := simRepo(t)
	r2, _ := simRepo(t)
	a, err := Run(r1, Config{Seed: 7, Ops: 150, Users: users})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	b, err := Run(r2, Config{Seed: 7, Ops: 150, Users: users})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for kind := range a.ByKind {
		if a.ByKind[kind].Ops != b.ByKind[kind].Ops ||
			a.ByKind[kind].Answered != b.ByKind[kind].Answered ||
			a.ByKind[kind].Errors != b.ByKind[kind].Errors {
			t.Fatalf("kind %s: nondeterministic counts", kind)
		}
	}
}

func TestSimulationConfigValidation(t *testing.T) {
	r, users := simRepo(t)
	if _, err := Run(r, Config{Seed: 1, Ops: 0, Users: users}); err == nil {
		t.Fatal("ops=0 accepted")
	}
	if _, err := Run(r, Config{Seed: 1, Ops: 10}); err == nil {
		t.Fatal("no users accepted")
	}
	empty := repo.New()
	if _, err := Run(empty, Config{Seed: 1, Ops: 10, Users: users}); err == nil {
		t.Fatal("empty repository accepted")
	}
}

func TestSimulationCustomMix(t *testing.T) {
	r, users := simRepo(t)
	res, err := Run(r, Config{Seed: 3, Ops: 100, Users: users, SearchWeight: 100})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.ByKind[OpSearch].Ops != 100 {
		t.Fatalf("search-only mix ran %d searches", res.ByKind[OpSearch].Ops)
	}
	if res.ByKind[OpProvenance].Ops != 0 {
		t.Fatal("provenance ran under search-only mix")
	}
}

func TestSimulationRender(t *testing.T) {
	r, users := simRepo(t)
	res, _ := Run(r, Config{Seed: 2, Ops: 50, Users: users})
	out := res.Render()
	if len(out) == 0 || res.Ops != 50 {
		t.Fatalf("Render:\n%s", out)
	}
}
