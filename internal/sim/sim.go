// Package sim drives a simulated population of users against a
// repository — the evaluation harness for the paper's system-level
// questions. Each simulated operation is a keyword search, a structural
// query (spec or execution level) or a provenance retrieval, drawn from
// a configurable mix with Zipf-distributed keywords. Every response is
// post-checked against the repository's policies: any answer exceeding
// the issuing user's rights counts as a leak incident, so the simulator
// doubles as a privacy regression harness.
package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"provpriv/internal/privacy"
	"provpriv/internal/query"
	"provpriv/internal/repo"
	"provpriv/internal/workflow"
	"provpriv/internal/workload"
)

// Config parameterizes a simulation run.
type Config struct {
	Seed int64
	// Ops is the total number of operations to issue.
	Ops int
	// Users are the simulated principals (must be registered in the
	// repository).
	Users []privacy.User
	// Mix weights per operation kind; zero values get defaults
	// (search 50%, spec query 15%, exec query 15%, provenance 20%).
	SearchWeight, SpecQueryWeight, ExecQueryWeight, ProvenanceWeight int
}

func (c *Config) normalize() error {
	if c.Ops <= 0 {
		return fmt.Errorf("sim: ops %d must be positive", c.Ops)
	}
	if len(c.Users) == 0 {
		return fmt.Errorf("sim: no users")
	}
	if c.SearchWeight == 0 && c.SpecQueryWeight == 0 && c.ExecQueryWeight == 0 && c.ProvenanceWeight == 0 {
		c.SearchWeight, c.SpecQueryWeight, c.ExecQueryWeight, c.ProvenanceWeight = 50, 15, 15, 20
	}
	return nil
}

// OpKind names a simulated operation type.
type OpKind string

// Operation kinds.
const (
	OpSearch     OpKind = "search"
	OpSpecQuery  OpKind = "spec-query"
	OpExecQuery  OpKind = "exec-query"
	OpProvenance OpKind = "provenance"
)

// KindStats aggregates one operation kind.
type KindStats struct {
	Ops      int
	Errors   int           // rejected operations (no match, hidden item…)
	Answered int           // operations with a non-empty answer
	Elapsed  time.Duration // wall time spent
}

// Result summarizes a simulation.
type Result struct {
	Ops           int
	LeakIncidents int
	ByKind        map[OpKind]*KindStats
	CacheHits     int
	CacheMisses   int
}

// Render prints the result for terminals.
func (r *Result) Render() string {
	out := fmt.Sprintf("ops=%d leaks=%d cache=%d/%d\n", r.Ops, r.LeakIncidents, r.CacheHits, r.CacheHits+r.CacheMisses)
	kinds := make([]string, 0, len(r.ByKind))
	for k := range r.ByKind {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		s := r.ByKind[OpKind(k)]
		avg := time.Duration(0)
		if s.Ops > 0 {
			avg = s.Elapsed / time.Duration(s.Ops)
		}
		out += fmt.Sprintf("%-11s ops=%-5d answered=%-5d rejected=%-5d avg=%v\n",
			k, s.Ops, s.Answered, s.Errors, avg)
	}
	return out
}

// Run executes the simulation against the repository.
func Run(r *repo.Repository, cfg Config) (*Result, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	specIDs := r.SpecIDs()
	if len(specIDs) == 0 {
		return nil, fmt.Errorf("sim: empty repository")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := &Result{ByKind: map[OpKind]*KindStats{
		OpSearch: {}, OpSpecQuery: {}, OpExecQuery: {}, OpProvenance: {},
	}}
	total := cfg.SearchWeight + cfg.SpecQueryWeight + cfg.ExecQueryWeight + cfg.ProvenanceWeight
	vocab := workload.DefaultVocab()

	pickKind := func() OpKind {
		x := rng.Intn(total)
		switch {
		case x < cfg.SearchWeight:
			return OpSearch
		case x < cfg.SearchWeight+cfg.SpecQueryWeight:
			return OpSpecQuery
		case x < cfg.SearchWeight+cfg.SpecQueryWeight+cfg.ExecQueryWeight:
			return OpExecQuery
		default:
			return OpProvenance
		}
	}

	for op := 0; op < cfg.Ops; op++ {
		u := cfg.Users[rng.Intn(len(cfg.Users))]
		kind := pickKind()
		st := res.ByKind[kind]
		st.Ops++
		res.Ops++
		start := time.Now()
		switch kind {
		case OpSearch:
			q := workload.RandomQueries(rng, vocab, 1)[0]
			hits, err := r.Search(u.Name, q, repo.SearchOptions{})
			if err != nil {
				st.Errors++
				break
			}
			if len(hits) > 0 {
				st.Answered++
			}
			res.LeakIncidents += checkSearchLeaks(r, u, hits)
		case OpSpecQuery:
			sid := specIDs[rng.Intn(len(specIDs))]
			q := fmt.Sprintf(`MATCH a = %q, b = %q WHERE a ~> b`,
				vocab[workload.ZipfPick(rng, len(vocab))],
				vocab[workload.ZipfPick(rng, len(vocab))])
			ans, err := r.QuerySpec(u.Name, sid, q)
			if err != nil {
				st.Errors++
				break
			}
			if len(ans.Bindings) > 0 {
				st.Answered++
			}
			res.LeakIncidents += checkModuleLeaks(r, u, sid, bindingModules(ans.Bindings))
		case OpExecQuery:
			sid := specIDs[rng.Intn(len(specIDs))]
			eids := r.ExecutionIDs(sid)
			if len(eids) == 0 {
				st.Errors++
				break
			}
			eid := eids[rng.Intn(len(eids))]
			q := fmt.Sprintf(`MATCH a = %q`, vocab[workload.ZipfPick(rng, len(vocab))])
			ans, err := r.Query(u.Name, sid, eid, q)
			if err != nil {
				st.Errors++
				break
			}
			if len(ans.Bindings) > 0 {
				st.Answered++
			}
		case OpProvenance:
			sid := specIDs[rng.Intn(len(specIDs))]
			eids := r.ExecutionIDs(sid)
			if len(eids) == 0 {
				st.Errors++
				break
			}
			eid := eids[rng.Intn(len(eids))]
			itemID := fmt.Sprintf("d%d", rng.Intn(25))
			prov, err := r.Provenance(u.Name, sid, eid, itemID)
			if err != nil {
				st.Errors++
				break
			}
			st.Answered++
			pol := r.Policy(sid)
			for _, it := range prov.Items {
				if !pol.CanSeeData(u.Level, it.Attr) && !it.Redacted {
					res.LeakIncidents++
				}
			}
		}
		st.Elapsed += time.Since(start)
	}
	res.CacheHits, res.CacheMisses = r.CacheStats()
	return res, nil
}

func bindingModules(bs []query.Binding) []string {
	set := make(map[string]bool)
	for _, b := range bs {
		for _, mid := range b {
			set[mid] = true
		}
	}
	out := make([]string, 0, len(set))
	for m := range set {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

func checkSearchLeaks(r *repo.Repository, u privacy.User, hits []repo.SearchHit) int {
	leaks := 0
	for _, h := range hits {
		pol := r.Policy(h.SpecID)
		spec := r.Spec(h.SpecID)
		if pol == nil || spec == nil {
			continue
		}
		hier, err := workflow.NewHierarchy(spec)
		if err != nil {
			continue
		}
		access := pol.AccessView(hier, u.Level)
		for wid := range h.Result.Prefix {
			if !access.Contains(wid) {
				leaks++
			}
		}
		for _, m := range h.Result.Matches {
			if !pol.CanSeeModule(u.Level, m.ModuleID) {
				leaks++
			}
		}
	}
	return leaks
}

func checkModuleLeaks(r *repo.Repository, u privacy.User, specID string, moduleIDs []string) int {
	pol := r.Policy(specID)
	if pol == nil {
		return 0
	}
	leaks := 0
	for _, mid := range moduleIDs {
		if !pol.CanSeeModule(u.Level, mid) {
			leaks++
		}
	}
	return leaks
}
