package exec

import (
	"encoding/json"
	"fmt"
	"io"
)

// MarshalExecution serializes an execution as indented JSON.
func MarshalExecution(e *Execution) ([]byte, error) {
	return json.MarshalIndent(e, "", "  ")
}

// UnmarshalExecution parses and validates an execution from JSON.
func UnmarshalExecution(data []byte) (*Execution, error) {
	var e Execution
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, fmt.Errorf("exec: decode execution: %w", err)
	}
	if err := e.Validate(); err != nil {
		return nil, err
	}
	return &e, nil
}

// WriteExecution writes the JSON encoding of e to w.
func WriteExecution(w io.Writer, e *Execution) error {
	data, err := MarshalExecution(e)
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// ReadExecution reads and validates an execution from r.
func ReadExecution(r io.Reader) (*Execution, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("exec: read execution: %w", err)
	}
	return UnmarshalExecution(data)
}
