// Package exec models workflow executions and their provenance graphs
// (Section 2 of the CIDR 2011 paper): executions mirror the workflow
// graph, associate a unique process id with each module execution,
// represent composite module executions by begin/end node pairs, and
// annotate every edge with the data items that flow across it. Each
// data item is produced by exactly one module execution and has a
// unique id.
package exec

import (
	"fmt"
	"sort"
	"strings"

	"provpriv/internal/graph"
)

// Value is the payload of a data item. Values are opaque strings; module
// privacy reasons about the relation between input and output values,
// never their semantics.
type Value string

// NodeKind classifies execution-graph nodes.
type NodeKind int

const (
	// SourceNode is the distinguished start node (I).
	SourceNode NodeKind = iota
	// SinkNode is the distinguished end node (O).
	SinkNode
	// AtomicNode is the execution of an atomic module.
	AtomicNode
	// BeginNode marks the activation of a composite module execution.
	BeginNode
	// EndNode marks the completion of a composite module execution.
	EndNode
)

func (k NodeKind) String() string {
	switch k {
	case SourceNode:
		return "source"
	case SinkNode:
		return "sink"
	case AtomicNode:
		return "atomic"
	case BeginNode:
		return "begin"
	case EndNode:
		return "end"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// Frame records one enclosing composite-module execution of a node:
// the composite's process id, its module id, and the subworkflow it
// expanded to. Frames are ordered outermost-first and drive execution
// views (collapsing composite executions not in a prefix).
type Frame struct {
	Proc   string `json:"proc"`
	Module string `json:"module"`
	Sub    string `json:"sub"`
}

// Node is a node of an execution graph, e.g. "S1:M1-begin" or "S2:M3".
type Node struct {
	ID     string   `json:"id"`
	Module string   `json:"module"` // module id in the spec ("" for I/O)
	Proc   string   `json:"proc"`   // process id ("" for I/O)
	Kind   NodeKind `json:"kind"`
	Frames []Frame  `json:"frames,omitempty"`
}

// DataItem is a single datum flowing through an execution. Producer is
// the id of the execution node that created it. Redacted items have had
// their Value masked by a privacy mechanism; the item's existence and
// attribute remain visible but not its payload.
type DataItem struct {
	ID       string `json:"id"`   // "d0", "d1", ...
	Attr     string `json:"attr"` // attribute name from the spec
	Value    Value  `json:"value"`
	Producer string `json:"producer"`
	Redacted bool   `json:"redacted,omitempty"`
}

// Edge is a dataflow edge of an execution graph annotated with the ids
// of the data items that flow across it.
type Edge struct {
	From  string   `json:"from"`
	To    string   `json:"to"`
	Items []string `json:"items"`
}

// Execution is a provenance graph: one run of a workflow specification.
//
// An Execution holds no hidden mutable state: every method that does not
// obviously write to it is safe for concurrent readers. The repository
// relies on this to serve one cached masked snapshot to arbitrarily many
// concurrent requests (see internal/repo) — do not reintroduce lazily
// memoized fields here without synchronization.
type Execution struct {
	ID     string               `json:"id"`
	SpecID string               `json:"spec"`
	Nodes  []*Node              `json:"nodes"`
	Edges  []Edge               `json:"edges"`
	Items  map[string]*DataItem `json:"items"`
}

// Node returns the node with the given id, or nil. The scan is linear:
// no read path resolves nodes by id in a loop, and memoizing the index
// would make concurrent readers of a shared execution race (it used to).
func (e *Execution) Node(id string) *Node {
	for _, n := range e.Nodes {
		if n.ID == id {
			return n
		}
	}
	return nil
}

// NodeIDs returns all node ids in sorted order.
func (e *Execution) NodeIDs() []string {
	ids := make([]string, len(e.Nodes))
	for i, n := range e.Nodes {
		ids[i] = n.ID
	}
	sort.Strings(ids)
	return ids
}

// ItemIDs returns all data item ids in sorted (numeric-aware) order.
func (e *Execution) ItemIDs() []string {
	ids := make([]string, 0, len(e.Items))
	for id := range e.Items {
		ids = append(ids, id)
	}
	sortItemIDs(ids)
	return ids
}

func sortItemIDs(ids []string) {
	sort.Slice(ids, func(i, j int) bool {
		a, b := ids[i], ids[j]
		if len(a) != len(b) && strings.HasPrefix(a, "d") && strings.HasPrefix(b, "d") {
			return len(a) < len(b)
		}
		return a < b
	})
}

// Graph returns the execution as a directed graph over node ids.
func (e *Execution) Graph() *graph.Graph {
	g := graph.New()
	for _, n := range e.Nodes {
		g.AddNode(n.ID)
	}
	for _, ed := range e.Edges {
		g.AddEdge(g.Lookup(ed.From), g.Lookup(ed.To))
	}
	return g
}

// ExecutionsOf returns the node executing the given spec module id
// (the begin node for composites), or nil.
func (e *Execution) ExecutionsOf(moduleID string) []*Node {
	var out []*Node
	for _, n := range e.Nodes {
		if n.Module == moduleID && (n.Kind == AtomicNode || n.Kind == BeginNode) {
			out = append(out, n)
		}
	}
	return out
}

// ItemsByAttr returns the data items carrying the given attribute, in
// item-id order. Most workflows produce one item per attribute per run;
// loops or fan-outs may produce several.
func (e *Execution) ItemsByAttr(attr string) []*DataItem {
	var out []*DataItem
	for _, id := range e.ItemIDs() {
		if e.Items[id].Attr == attr {
			out = append(out, e.Items[id])
		}
	}
	return out
}

// ItemsByProducer groups the execution's data items by producing node,
// each group in item-id order. Taint propagation uses it to map the
// reachable-node set of a protected source onto the items it may leak
// into.
func (e *Execution) ItemsByProducer() map[string][]*DataItem {
	out := make(map[string][]*DataItem, len(e.Nodes))
	for _, id := range e.ItemIDs() {
		it := e.Items[id]
		out[it.Producer] = append(out[it.Producer], it)
	}
	return out
}

// ProducerOf returns the node that produced item id, or nil.
func (e *Execution) ProducerOf(itemID string) *Node {
	it := e.Items[itemID]
	if it == nil {
		return nil
	}
	return e.Node(it.Producer)
}

// Validate checks internal consistency: unique node ids, edges
// referencing known nodes and items, every item produced by a known
// node, and acyclicity.
func (e *Execution) Validate() error {
	seen := make(map[string]bool, len(e.Nodes))
	for _, n := range e.Nodes {
		if seen[n.ID] {
			return fmt.Errorf("exec: duplicate node id %q", n.ID)
		}
		seen[n.ID] = true
	}
	for _, ed := range e.Edges {
		if !seen[ed.From] || !seen[ed.To] {
			return fmt.Errorf("exec: edge %s->%s references unknown node", ed.From, ed.To)
		}
		if len(ed.Items) == 0 {
			return fmt.Errorf("exec: edge %s->%s carries no items", ed.From, ed.To)
		}
		for _, it := range ed.Items {
			if e.Items[it] == nil {
				return fmt.Errorf("exec: edge %s->%s carries unknown item %q", ed.From, ed.To, it)
			}
		}
	}
	for id, it := range e.Items {
		if it.ID != id {
			return fmt.Errorf("exec: item key %q has id %q", id, it.ID)
		}
		if !seen[it.Producer] {
			return fmt.Errorf("exec: item %s produced by unknown node %q", id, it.Producer)
		}
	}
	if !e.Graph().IsAcyclic() {
		return fmt.Errorf("exec: execution graph has a cycle")
	}
	return nil
}

// ASCII renders the execution as text lines "from -> to [items]" in
// deterministic order (regenerates Fig. 4).
func (e *Execution) ASCII() string {
	var b strings.Builder
	fmt.Fprintf(&b, "execution %s of %s\n", e.ID, e.SpecID)
	edges := append([]Edge(nil), e.Edges...)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	for _, ed := range edges {
		items := append([]string(nil), ed.Items...)
		sortItemIDs(items)
		fmt.Fprintf(&b, "  %s -> %s  [%s]\n", ed.From, ed.To, strings.Join(items, ","))
	}
	return b.String()
}

// DOT renders the execution in Graphviz format.
func (e *Execution) DOT() string {
	g := e.Graph()
	kind := make(map[string]NodeKind, len(e.Nodes))
	for _, n := range e.Nodes {
		kind[n.ID] = n.Kind
	}
	itemsOf := make(map[[2]string]string, len(e.Edges))
	for _, ed := range e.Edges {
		items := append([]string(nil), ed.Items...)
		sortItemIDs(items)
		itemsOf[[2]string{ed.From, ed.To}] = strings.Join(items, ",")
	}
	return g.DOT(graph.DotOptions{
		Name:    e.ID,
		Rankdir: "TB",
		NodeAttrs: func(n graph.NodeID) string {
			id := g.Name(n)
			switch kind[id] {
			case SourceNode, SinkNode:
				return "shape=circle"
			case BeginNode, EndNode:
				return "shape=box,style=rounded"
			default:
				return "shape=box"
			}
		},
		EdgeAttrs: func(ed graph.Edge) string {
			return fmt.Sprintf("label=%q", itemsOf[[2]string{g.Name(ed.U), g.Name(ed.V)}])
		},
	})
}
