package exec

import (
	"strings"
	"testing"

	"provpriv/internal/workflow"
)

func runDisease(t *testing.T) (*workflow.Spec, *Execution) {
	t.Helper()
	spec := workflow.DiseaseSusceptibility()
	r := NewRunner(spec, nil)
	e, err := r.Run("E1", map[string]Value{
		"snps":           "rs123,rs456",
		"ethnicity":      "eth1",
		"lifestyle":      "active",
		"family_history": "fh1",
		"symptoms":       "none",
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return spec, e
}

func TestRunProducesValidExecution(t *testing.T) {
	_, e := runDisease(t)
	if err := e.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if !e.Graph().IsAcyclic() {
		t.Fatal("execution cyclic")
	}
}

func TestRunProcessIDsMatchFig4(t *testing.T) {
	_, e := runDisease(t)
	// Fig. 4 numbering: S1:M1-begin, S2:M3, S3:M4-begin, S4:M5, S5:M6,
	// S6:M7, S7:M8, S8:M2-begin, S9:M9, S10:M12, S11:M13, S12:M14,
	// S13:M10, S14:M11, S15:M15.
	want := map[string]bool{
		"I": true, "O": true,
		"S1:M1-begin": true, "S1:M1-end": true,
		"S2:M3":       true,
		"S3:M4-begin": true, "S3:M4-end": true,
		"S4:M5": true, "S5:M6": true, "S6:M7": true, "S7:M8": true,
		"S8:M2-begin": true, "S8:M2-end": true,
		"S9:M9": true, "S10:M12": true, "S11:M13": true, "S12:M14": true,
		"S13:M10": true, "S14:M11": true, "S15:M15": true,
	}
	if len(e.Nodes) != len(want) {
		t.Fatalf("node count = %d, want %d: %v", len(e.Nodes), len(want), e.NodeIDs())
	}
	for _, n := range e.Nodes {
		if !want[n.ID] {
			t.Errorf("unexpected node %s", n.ID)
		}
	}
}

func TestRunDataItemsMatchFig4(t *testing.T) {
	_, e := runDisease(t)
	// d0..d4 are the five workflow inputs, produced by I.
	for _, id := range []string{"d0", "d1", "d2", "d3", "d4"} {
		it := e.Items[id]
		if it == nil || it.Producer != "I" {
			t.Fatalf("item %s = %+v, want produced by I", id, it)
		}
	}
	// 5 inputs + snp_set + 2 queries + 2 disorder sets + disorders +
	// 2 W3 queries + articles + reformatted + summary + notes +
	// updated_notes + prognosis = 19 items (d0..d18).
	if len(e.Items) != 19 {
		t.Fatalf("items = %d (%v), want 19", len(e.Items), e.ItemIDs())
	}
	// The paper's d10 (disorders) flows M8 -> M4-end -> M1-end -> M2-begin.
	dis := findItemByAttr(e, "disorders")
	if dis == nil {
		t.Fatal("no disorders item")
	}
	if e.Items[dis.ID].Producer != "S7:M8" {
		t.Fatalf("disorders produced by %s, want S7:M8", e.Items[dis.ID].Producer)
	}
	for _, hop := range [][2]string{
		{"S7:M8", "S3:M4-end"},
		{"S3:M4-end", "S1:M1-end"},
		{"S1:M1-end", "S8:M2-begin"},
	} {
		if !edgeCarries(e, hop[0], hop[1], dis.ID) {
			t.Fatalf("edge %s->%s does not carry %s", hop[0], hop[1], dis.ID)
		}
	}
}

func findItemByAttr(e *Execution, attr string) *DataItem {
	for _, id := range e.ItemIDs() {
		if e.Items[id].Attr == attr {
			return e.Items[id]
		}
	}
	return nil
}

func edgeCarries(e *Execution, from, to, item string) bool {
	for _, ed := range e.Edges {
		if ed.From == from && ed.To == to {
			for _, it := range ed.Items {
				if it == item {
					return true
				}
			}
		}
	}
	return false
}

func TestRunBeginRelaysInputs(t *testing.T) {
	_, e := runDisease(t)
	// I passes d0,d1 to S1:M1-begin, which relays them to S2:M3 (Fig. 4).
	if !edgeCarries(e, "I", "S1:M1-begin", "d0") || !edgeCarries(e, "I", "S1:M1-begin", "d1") {
		t.Fatal("I -> M1-begin missing d0/d1")
	}
	if !edgeCarries(e, "S1:M1-begin", "S2:M3", "d0") {
		t.Fatal("M1-begin -> M3 missing d0")
	}
}

func TestRunDeterministic(t *testing.T) {
	_, e1 := runDisease(t)
	_, e2 := runDisease(t)
	if e1.ASCII() != e2.ASCII() {
		t.Fatal("two identical runs differ")
	}
}

func TestRunMissingInput(t *testing.T) {
	spec := workflow.DiseaseSusceptibility()
	r := NewRunner(spec, nil)
	_, err := r.Run("E", map[string]Value{"snps": "x"})
	if err == nil || !strings.Contains(err.Error(), "missing workflow input") {
		t.Fatalf("err = %v, want missing-input error", err)
	}
}

func TestRunCustomFuncs(t *testing.T) {
	spec := workflow.DiseaseSusceptibility()
	called := false
	r := NewRunner(spec, Registry{
		"M3": func(in map[string]Value) map[string]Value {
			called = true
			return map[string]Value{"snp_set": "EXPANDED:" + in["snps"]}
		},
	})
	e, err := r.Run("E", map[string]Value{
		"snps": "s", "ethnicity": "e", "lifestyle": "l",
		"family_history": "f", "symptoms": "y",
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !called {
		t.Fatal("custom func not called")
	}
	it := findItemByAttr(e, "snp_set")
	if it == nil || it.Value != "EXPANDED:s" {
		t.Fatalf("snp_set = %+v", it)
	}
}

func TestRunFuncMissingOutput(t *testing.T) {
	spec := workflow.DiseaseSusceptibility()
	r := NewRunner(spec, Registry{
		"M3": func(in map[string]Value) map[string]Value { return nil },
	})
	_, err := r.Run("E", map[string]Value{
		"snps": "s", "ethnicity": "e", "lifestyle": "l",
		"family_history": "f", "symptoms": "y",
	})
	if err == nil || !strings.Contains(err.Error(), "did not produce output") {
		t.Fatalf("err = %v", err)
	}
}

func TestProvenance(t *testing.T) {
	_, e := runDisease(t)
	dis := findItemByAttr(e, "disorders")
	prov, err := Provenance(e, dis.ID)
	if err != nil {
		t.Fatalf("Provenance: %v", err)
	}
	if err := prov.Validate(); err != nil {
		t.Fatalf("provenance invalid: %v", err)
	}
	// Provenance of disorders includes I, M3, M5..M8 chain but not W3
	// modules or O.
	for _, want := range []string{"I", "S2:M3", "S4:M5", "S7:M8"} {
		if prov.Node(want) == nil {
			t.Errorf("provenance missing node %s", want)
		}
	}
	for _, bad := range []string{"O", "S9:M9", "S15:M15"} {
		if prov.Node(bad) != nil {
			t.Errorf("provenance wrongly contains %s", bad)
		}
	}
	// DESIGN.md §5: provenance is connected and contains the producer.
	g := prov.Graph()
	src := g.Lookup("I")
	prod := g.Lookup("S7:M8")
	if src == -1 || prod == -1 || !g.Reachable(src, prod) {
		t.Fatal("provenance not connected from source to producer")
	}
}

func TestProvenanceOfInput(t *testing.T) {
	_, e := runDisease(t)
	prov, err := Provenance(e, "d0")
	if err != nil {
		t.Fatalf("Provenance(d0): %v", err)
	}
	if len(prov.Nodes) != 1 || prov.Nodes[0].ID != "I" {
		t.Fatalf("provenance of input = %v, want just I", prov.NodeIDs())
	}
	if prov.Items["d0"] == nil {
		t.Fatal("queried item dropped from provenance")
	}
}

func TestProvenanceUnknownItem(t *testing.T) {
	_, e := runDisease(t)
	if _, err := Provenance(e, "d999"); err == nil {
		t.Fatal("unknown item accepted")
	}
}

func TestDownstream(t *testing.T) {
	_, e := runDisease(t)
	snp := findItemByAttr(e, "snp_set")
	down, err := Downstream(e, snp.ID)
	if err != nil {
		t.Fatalf("Downstream: %v", err)
	}
	has := func(attr string) bool {
		for _, id := range down {
			if e.Items[id].Attr == attr {
				return true
			}
		}
		return false
	}
	for _, want := range []string{"snp_set", "disorders", "prognosis"} {
		if !has(want) {
			t.Errorf("Downstream missing %s (got %v)", want, down)
		}
	}
	if has("snps") || has("lifestyle") {
		t.Errorf("Downstream includes upstream/sibling items: %v", down)
	}
}

// Property: every data item's provenance contains its producer, and
// provenance is monotone along dataflow: if item b is downstream of
// item a, prov(a)'s nodes are a subset of prov(b)'s.
func TestProvenanceMonotone(t *testing.T) {
	_, e := runDisease(t)
	snp := findItemByAttr(e, "snp_set")
	dis := findItemByAttr(e, "disorders")
	pa, _ := Provenance(e, snp.ID)
	pb, _ := Provenance(e, dis.ID)
	inB := make(map[string]bool)
	for _, n := range pb.Nodes {
		inB[n.ID] = true
	}
	for _, n := range pa.Nodes {
		if !inB[n.ID] {
			t.Fatalf("prov(snp_set) node %s not in prov(disorders)", n.ID)
		}
	}
}

func TestASCIIAndDOT(t *testing.T) {
	_, e := runDisease(t)
	ascii := e.ASCII()
	if !strings.Contains(ascii, "S7:M8 -> S3:M4-end") {
		t.Fatalf("ASCII missing composite-end edge:\n%s", ascii)
	}
	dot := e.DOT()
	if !strings.Contains(dot, `"I" -> "S1:M1-begin"`) {
		t.Fatalf("DOT missing begin edge:\n%s", dot)
	}
}

func TestCompareExecutions(t *testing.T) {
	spec := workflow.DiseaseSusceptibility()
	run := func(id, snps string) *Execution {
		e, err := NewRunner(spec, nil).Run(id, map[string]Value{
			"snps": Value(snps), "ethnicity": "eth1", "lifestyle": "active",
			"family_history": "fh1", "symptoms": "none",
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return e
	}
	a := run("A", "rs1")
	b := run("B", "rs1")
	d, err := CompareExecutions(a, b)
	if err != nil {
		t.Fatalf("CompareExecutions: %v", err)
	}
	if !d.Equal() {
		t.Fatalf("identical runs differ:\n%s", d.Render())
	}
	c := run("C", "rsDIFFERENT")
	d2, err := CompareExecutions(a, c)
	if err != nil {
		t.Fatalf("CompareExecutions: %v", err)
	}
	if d2.Equal() {
		t.Fatal("different runs reported equal")
	}
	// snps differs at the source; everything downstream of it differs
	// too, and the first divergence is the source-produced snps.
	if d2.FirstDivergence != "snps" {
		t.Fatalf("FirstDivergence = %s, want snps\n%s", d2.FirstDivergence, d2.Render())
	}
	found := false
	for _, v := range d2.ValueDiffs {
		if v.Attr == "snps" && v.NodeA == "I" {
			found = true
		}
	}
	if !found {
		t.Fatalf("snps diff missing:\n%s", d2.Render())
	}
	// Lifestyle is untouched: must not appear.
	for _, v := range d2.ValueDiffs {
		if v.Attr == "lifestyle" {
			t.Fatal("unchanged attribute reported")
		}
	}
	// Cross-spec diff rejected.
	other := &Execution{ID: "X", SpecID: "other", Items: map[string]*DataItem{}}
	if _, err := CompareExecutions(a, other); err == nil {
		t.Fatal("cross-spec diff accepted")
	}
}

func TestNodeFrames(t *testing.T) {
	_, e := runDisease(t)
	// M8 runs inside W4 inside W2: two frames, outermost first.
	n := e.Node("S7:M8")
	if n == nil {
		t.Fatal("S7:M8 missing")
	}
	if len(n.Frames) != 2 {
		t.Fatalf("frames = %+v, want 2", n.Frames)
	}
	if n.Frames[0].Module != "M1" || n.Frames[0].Sub != "W2" {
		t.Fatalf("outer frame = %+v", n.Frames[0])
	}
	if n.Frames[1].Module != "M4" || n.Frames[1].Sub != "W4" {
		t.Fatalf("inner frame = %+v", n.Frames[1])
	}
	// Begin/end nodes carry their own frame.
	b := e.Node("S3:M4-begin")
	if len(b.Frames) != 2 || b.Frames[1].Proc != "S3" {
		t.Fatalf("begin frames = %+v", b.Frames)
	}
	// Root-level nodes have no frames.
	if i := e.Node("I"); len(i.Frames) != 0 {
		t.Fatalf("I frames = %+v", i.Frames)
	}
}

func TestItemsByAttr(t *testing.T) {
	_, e := runDisease(t)
	items := e.ItemsByAttr("disorders")
	if len(items) != 1 || items[0].Producer != "S7:M8" {
		t.Fatalf("ItemsByAttr(disorders) = %+v", items)
	}
	if got := e.ItemsByAttr("nope"); got != nil {
		t.Fatalf("ItemsByAttr(nope) = %v", got)
	}
}
