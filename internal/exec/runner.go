package exec

import (
	"fmt"
	"sort"

	"provpriv/internal/workflow"
)

// Func computes a module's outputs from its inputs, both keyed by
// attribute name. Implementations must be deterministic: the privacy
// analyses treat a module as a fixed relation between inputs and
// outputs.
type Func func(in map[string]Value) map[string]Value

// Registry maps module ids to their implementations. Modules without an
// entry run DefaultFunc.
type Registry map[string]Func

// DefaultFunc returns a deterministic synthetic implementation for a
// module: each output attribute's value is derived from the module id,
// the attribute name and all input values. It stands in for the paper's
// real scientific modules, whose code is unavailable; only the
// input→output relation matters to the privacy machinery.
func DefaultFunc(moduleID string, outputs []string) Func {
	return func(in map[string]Value) map[string]Value {
		attrs := make([]string, 0, len(in))
		for a := range in {
			attrs = append(attrs, a)
		}
		sort.Strings(attrs)
		var sig string
		for _, a := range attrs {
			sig += a + "=" + string(in[a]) + ";"
		}
		out := make(map[string]Value, len(outputs))
		for _, o := range outputs {
			out[o] = Value(fmt.Sprintf("%s(%s|%s)", moduleID, o, sig))
		}
		return out
	}
}

// Runner executes a workflow specification to produce provenance graphs.
type Runner struct {
	Spec  *workflow.Spec
	Funcs Registry
}

// NewRunner returns a Runner over the given (validated) spec.
func NewRunner(s *workflow.Spec, funcs Registry) *Runner {
	if funcs == nil {
		funcs = Registry{}
	}
	return &Runner{Spec: s, Funcs: funcs}
}

// supply records where an attribute's current data item is available:
// the execution node holding it and the item id.
type supply struct {
	node string
	item string
}

type runState struct {
	exec  *Execution
	procN int
	itemN int
	funcs Registry
	spec  *workflow.Spec
	edges map[[2]string]map[string]bool // (from,to) -> item set
}

// Run executes the spec on the given workflow inputs (one Value per
// output attribute of the root source module) and returns the resulting
// execution graph.
func (r *Runner) Run(execID string, inputs map[string]Value) (*Execution, error) {
	st := &runState{
		exec: &Execution{
			ID:     execID,
			SpecID: r.Spec.ID,
			Items:  make(map[string]*DataItem),
		},
		funcs: r.Funcs,
		spec:  r.Spec,
		edges: make(map[[2]string]map[string]bool),
	}
	root := r.Spec.RootWorkflow()
	if root == nil {
		return nil, fmt.Errorf("exec: spec %s has no root workflow", r.Spec.ID)
	}
	if _, err := st.runWorkflow(root, nil, nil, inputs); err != nil {
		return nil, err
	}
	st.flushEdges()
	if err := st.exec.Validate(); err != nil {
		return nil, fmt.Errorf("exec: internal error: produced invalid execution: %w", err)
	}
	return st.exec, nil
}

func (st *runState) newItem(attr string, val Value, producer string) *DataItem {
	it := &DataItem{
		ID:       fmt.Sprintf("d%d", st.itemN),
		Attr:     attr,
		Value:    val,
		Producer: producer,
	}
	st.itemN++
	st.exec.Items[it.ID] = it
	return it
}

func (st *runState) addNode(n *Node) *Node {
	st.exec.Nodes = append(st.exec.Nodes, n)
	return n
}

func (st *runState) addEdge(from, to, item string) {
	k := [2]string{from, to}
	if st.edges[k] == nil {
		st.edges[k] = make(map[string]bool)
	}
	st.edges[k][item] = true
}

func (st *runState) flushEdges() {
	keys := make([][2]string, 0, len(st.edges))
	for k := range st.edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		items := make([]string, 0, len(st.edges[k]))
		for it := range st.edges[k] {
			items = append(items, it)
		}
		sortItemIDs(items)
		st.exec.Edges = append(st.exec.Edges, Edge{From: k[0], To: k[1], Items: items})
	}
}

// scheduleOrder returns the workflow's modules in topological order,
// breaking ties by insertion order (which reproduces the paper's
// process-id numbering on Fig. 4).
func scheduleOrder(w *workflow.Workflow) ([]*workflow.Module, error) {
	pos := make(map[string]int, len(w.Modules))
	for i, m := range w.Modules {
		pos[m.ID] = i
	}
	indeg := make(map[string]int, len(w.Modules))
	succ := make(map[string][]string, len(w.Modules))
	for _, e := range w.Edges {
		indeg[e.To]++
		succ[e.From] = append(succ[e.From], e.To)
	}
	var ready []string
	for _, m := range w.Modules {
		if indeg[m.ID] == 0 {
			ready = append(ready, m.ID)
		}
	}
	var order []*workflow.Module
	for len(ready) > 0 {
		sort.Slice(ready, func(i, j int) bool { return pos[ready[i]] < pos[ready[j]] })
		id := ready[0]
		ready = ready[1:]
		order = append(order, w.Module(id))
		for _, nxt := range succ[id] {
			indeg[nxt]--
			if indeg[nxt] == 0 {
				ready = append(ready, nxt)
			}
		}
	}
	if len(order) != len(w.Modules) {
		return nil, fmt.Errorf("exec: workflow %s has a cycle", w.ID)
	}
	return order, nil
}

// runWorkflow executes one workflow. extSupply provides the data items
// for the workflow's entry attributes (nil for the root, whose source
// module generates items from rootInputs). frames are the enclosing
// composite executions. It returns the supply for each attribute exposed
// at an exit module.
func (st *runState) runWorkflow(w *workflow.Workflow, extSupply map[string]supply, frames []Frame, rootInputs map[string]Value) (map[string]supply, error) {
	order, err := scheduleOrder(w)
	if err != nil {
		return nil, err
	}
	// produced[m][a] = supply made available by module m.
	produced := make(map[string]map[string]supply)

	for _, m := range order {
		// Assemble this module's input supplies: edge-fed attributes from
		// upstream producers, entry attributes from extSupply.
		inSupply := make(map[string]supply)
		for _, e := range w.Edges {
			if e.To != m.ID {
				continue
			}
			for _, a := range e.Data {
				src, ok := produced[e.From][a]
				if !ok {
					return nil, fmt.Errorf("exec: %s: edge %s->%s needs %q before it is produced", w.ID, e.From, e.To, a)
				}
				inSupply[a] = src
			}
		}
		for _, a := range m.Inputs {
			if _, ok := inSupply[a]; ok {
				continue
			}
			s, ok := extSupply[a]
			if !ok {
				return nil, fmt.Errorf("exec: %s: module %s input %q has no supplier", w.ID, m.ID, a)
			}
			inSupply[a] = s
		}

		switch m.Kind {
		case workflow.Source:
			node := st.addNode(&Node{ID: m.ID, Module: m.ID, Kind: SourceNode, Frames: frames})
			outs := make(map[string]supply, len(m.Outputs))
			for _, a := range m.Outputs {
				val, ok := rootInputs[a]
				if !ok {
					return nil, fmt.Errorf("exec: missing workflow input %q", a)
				}
				it := st.newItem(a, val, node.ID)
				outs[a] = supply{node: node.ID, item: it.ID}
			}
			produced[m.ID] = outs

		case workflow.Sink:
			node := st.addNode(&Node{ID: m.ID, Module: m.ID, Kind: SinkNode, Frames: frames})
			for _, a := range m.Inputs {
				s, ok := inSupply[a]
				if !ok {
					return nil, fmt.Errorf("exec: sink %s missing input %q", m.ID, a)
				}
				st.addEdge(s.node, node.ID, s.item)
			}
			produced[m.ID] = nil

		case workflow.Atomic:
			st.procN++
			proc := fmt.Sprintf("S%d", st.procN)
			node := st.addNode(&Node{
				ID: proc + ":" + m.ID, Module: m.ID, Proc: proc,
				Kind: AtomicNode, Frames: frames,
			})
			inVals := make(map[string]Value, len(m.Inputs))
			for _, a := range m.Inputs {
				s := inSupply[a]
				st.addEdge(s.node, node.ID, s.item)
				inVals[a] = Value(st.exec.Items[s.item].Value)
			}
			fn := st.funcs[m.ID]
			if fn == nil {
				fn = DefaultFunc(m.ID, m.Outputs)
			}
			outVals := fn(inVals)
			outs := make(map[string]supply, len(m.Outputs))
			for _, a := range m.Outputs {
				v, ok := outVals[a]
				if !ok {
					return nil, fmt.Errorf("exec: module %s did not produce output %q", m.ID, a)
				}
				it := st.newItem(a, v, node.ID)
				outs[a] = supply{node: node.ID, item: it.ID}
			}
			produced[m.ID] = outs

		case workflow.Composite:
			st.procN++
			proc := fmt.Sprintf("S%d", st.procN)
			frame := Frame{Proc: proc, Module: m.ID, Sub: m.Sub}
			ownFrames := append(append([]Frame(nil), frames...), frame)
			begin := st.addNode(&Node{
				ID: proc + ":" + m.ID + "-begin", Module: m.ID, Proc: proc,
				Kind: BeginNode, Frames: ownFrames,
			})
			subExt := make(map[string]supply, len(m.Inputs))
			for _, a := range m.Inputs {
				s := inSupply[a]
				st.addEdge(s.node, begin.ID, s.item)
				// The begin node relays the same item into the subworkflow.
				subExt[a] = supply{node: begin.ID, item: s.item}
			}
			sub := st.spec.Workflows[m.Sub]
			if sub == nil {
				return nil, fmt.Errorf("exec: composite %s references missing workflow %s", m.ID, m.Sub)
			}
			subOut, err := st.runWorkflow(sub, subExt, ownFrames, rootInputs)
			if err != nil {
				return nil, err
			}
			end := st.addNode(&Node{
				ID: proc + ":" + m.ID + "-end", Module: m.ID, Proc: proc,
				Kind: EndNode, Frames: ownFrames,
			})
			outs := make(map[string]supply, len(m.Outputs))
			for _, a := range m.Outputs {
				s, ok := subOut[a]
				if !ok {
					return nil, fmt.Errorf("exec: subworkflow %s produced no %q for %s", m.Sub, a, m.ID)
				}
				st.addEdge(s.node, end.ID, s.item)
				outs[a] = supply{node: end.ID, item: s.item}
			}
			produced[m.ID] = outs
		}
	}

	// Exposed outputs: exit supplies per attribute.
	out := make(map[string]supply)
	for _, m := range w.Modules {
		for _, a := range m.Outputs {
			if len(w.Exits(a)) == 0 {
				continue
			}
			for _, x := range w.Exits(a) {
				if x.ID == m.ID {
					if s, ok := produced[m.ID][a]; ok {
						out[a] = s
					}
				}
			}
		}
	}
	return out, nil
}
