package exec_test

// Cross-package property tests: the exec invariants of DESIGN.md §5
// checked on randomly generated hierarchical specifications, not just
// the hand-built paper example. External test package to use the
// workload generator without an import cycle.

import (
	"testing"

	"provpriv/internal/exec"
	"provpriv/internal/workflow"
	"provpriv/internal/workload"
)

func randomRun(t *testing.T, seed int64) (*workflow.Spec, *exec.Execution) {
	t.Helper()
	s, err := workload.RandomSpec(workload.SpecConfig{
		Seed: seed, Depth: 3, Fanout: 2, Chain: 4, SkipProb: 0.35,
	})
	if err != nil {
		t.Fatalf("seed %d: RandomSpec: %v", seed, err)
	}
	e, err := exec.NewRunner(s, nil).Run("E", workload.RandomInputs(s, seed))
	if err != nil {
		t.Fatalf("seed %d: Run: %v", seed, err)
	}
	return s, e
}

func TestRandomSpecExecutionInvariants(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		s, e := randomRun(t, seed)
		if err := e.Validate(); err != nil {
			t.Fatalf("seed %d: invalid execution: %v", seed, err)
		}
		g := e.Graph()
		if !g.IsAcyclic() {
			t.Fatalf("seed %d: cyclic execution", seed)
		}
		// Every item is produced by exactly one node (its Producer), and
		// appears on no edge upstream of that node.
		for id, it := range e.Items {
			prod := g.Lookup(it.Producer)
			if prod == -1 {
				t.Fatalf("seed %d: item %s producer missing", seed, id)
			}
		}
		// Provenance of every item is connected and contains the producer.
		for _, id := range e.ItemIDs() {
			p, err := exec.Provenance(e, id)
			if err != nil {
				t.Fatalf("seed %d: Provenance(%s): %v", seed, id, err)
			}
			if err := p.Validate(); err != nil {
				t.Fatalf("seed %d: provenance of %s invalid: %v", seed, id, err)
			}
			if p.Node(e.Items[id].Producer) == nil {
				t.Fatalf("seed %d: provenance of %s misses producer", seed, id)
			}
		}
		_ = s
	}
}

func TestRandomSpecCollapseInvariants(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		s, e := randomRun(t, seed)
		h, err := workflow.NewHierarchy(s)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		prefixes := workflow.Prefixes(h)
		if len(prefixes) > 40 {
			prefixes = prefixes[:40]
		}
		fullItems := make(map[string]bool)
		for _, id := range e.ItemIDs() {
			fullItems[id] = true
		}
		for _, p := range prefixes {
			v, err := exec.Collapse(e, s, p)
			if err != nil {
				t.Fatalf("seed %d prefix %v: %v", seed, p.IDs(), err)
			}
			if err := v.Validate(); err != nil {
				t.Fatalf("seed %d prefix %v: invalid view: %v", seed, p.IDs(), err)
			}
			if !v.Graph().IsAcyclic() {
				t.Fatalf("seed %d prefix %v: cyclic view", seed, p.IDs())
			}
			for _, id := range v.ItemIDs() {
				if !fullItems[id] {
					t.Fatalf("seed %d prefix %v: item %s fabricated", seed, p.IDs(), id)
				}
			}
		}
	}
}

// Downstream/provenance duality: item b is in Downstream(a) iff a's
// producer is in Provenance(b)'s node set or upstream of b's producer.
func TestRandomSpecDownstreamDuality(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		_, e := randomRun(t, seed)
		ids := e.ItemIDs()
		if len(ids) > 12 {
			ids = ids[:12]
		}
		for _, a := range ids {
			down, err := exec.Downstream(e, a)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			inDown := make(map[string]bool)
			for _, d := range down {
				inDown[d] = true
			}
			for _, b := range ids {
				p, err := exec.Provenance(e, b)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				producerInProv := p.Node(e.Items[a].Producer) != nil
				if producerInProv != inDown[b] {
					t.Fatalf("seed %d: duality violated for a=%s b=%s: prov=%v down=%v",
						seed, a, b, producerInProv, inDown[b])
				}
			}
		}
	}
}

func TestRandomSpecJSONRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		_, e := randomRun(t, seed)
		data, err := exec.MarshalExecution(e)
		if err != nil {
			t.Fatalf("seed %d: marshal: %v", seed, err)
		}
		e2, err := exec.UnmarshalExecution(data)
		if err != nil {
			t.Fatalf("seed %d: unmarshal: %v", seed, err)
		}
		if e2.ASCII() != e.ASCII() {
			t.Fatalf("seed %d: round trip changed execution", seed)
		}
	}
}
