package exec

import (
	"fmt"
	"sort"

	"provpriv/internal/workflow"
)

// Collapse computes the view of an execution determined by a prefix of
// the spec's expansion hierarchy (Section 2 / Fig. 2): every composite
// module execution whose subworkflow is NOT in the prefix is collapsed
// into a single node "proc:module", absorbing its begin/end pair and
// everything executed inside it. Edges are remapped, self-loops dropped,
// and only data items visible on surviving edges are retained — hidden
// intermediate data is exactly what the view conceals.
func Collapse(e *Execution, spec *workflow.Spec, prefix workflow.Prefix) (*Execution, error) {
	h, err := workflow.NewHierarchy(spec)
	if err != nil {
		return nil, err
	}
	if err := prefix.Validate(h); err != nil {
		return nil, err
	}

	// mapNode returns the visible node that represents n in the view.
	type target struct {
		id     string
		module string
		proc   string
		kind   NodeKind
		frames []Frame
	}
	mapNode := func(n *Node) target {
		for i, f := range n.Frames {
			if !prefix.Contains(f.Sub) {
				return target{
					id:     f.Proc + ":" + f.Module,
					module: f.Module,
					proc:   f.Proc,
					kind:   AtomicNode, // appears as a single module execution
					frames: append([]Frame(nil), n.Frames[:i]...),
				}
			}
		}
		return target{id: n.ID, module: n.Module, proc: n.Proc, kind: n.Kind,
			frames: append([]Frame(nil), n.Frames...)}
	}

	view := &Execution{
		ID:     e.ID + "/view",
		SpecID: e.SpecID,
		Items:  make(map[string]*DataItem),
	}
	seen := make(map[string]bool)
	repr := make(map[string]string, len(e.Nodes)) // original node -> view node
	for _, n := range e.Nodes {
		t := mapNode(n)
		repr[n.ID] = t.id
		if !seen[t.id] {
			seen[t.id] = true
			view.Nodes = append(view.Nodes, &Node{
				ID: t.id, Module: t.module, Proc: t.proc, Kind: t.kind, Frames: t.frames,
			})
		}
	}

	merged := make(map[[2]string]map[string]bool)
	for _, ed := range e.Edges {
		f, t := repr[ed.From], repr[ed.To]
		if f == t {
			continue // internal to a collapsed composite
		}
		k := [2]string{f, t}
		if merged[k] == nil {
			merged[k] = make(map[string]bool)
		}
		for _, it := range ed.Items {
			merged[k][it] = true
		}
	}
	keys := make([][2]string, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		items := make([]string, 0, len(merged[k]))
		for it := range merged[k] {
			items = append(items, it)
			orig := e.Items[it]
			cp := *orig
			cp.Producer = repr[orig.Producer]
			view.Items[it] = &cp
		}
		sortItemIDs(items)
		view.Edges = append(view.Edges, Edge{From: k[0], To: k[1], Items: items})
	}
	if err := view.Validate(); err != nil {
		return nil, fmt.Errorf("exec: collapse produced invalid view: %w", err)
	}
	return view, nil
}

// VisibleItems returns the ids of the data items visible in the view of
// e under prefix — the complement of what the view hides.
func VisibleItems(e *Execution, spec *workflow.Spec, prefix workflow.Prefix) ([]string, error) {
	v, err := Collapse(e, spec, prefix)
	if err != nil {
		return nil, err
	}
	return v.ItemIDs(), nil
}
