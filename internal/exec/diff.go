package exec

import (
	"fmt"
	"sort"
	"strings"
)

// Diff compares two executions of the same specification — the
// provenance debugging scenario from the paper's introduction ("finding
// erroneous or suspect data, a user may then ask provenance queries to
// … understand how the process failed that led to creating the data").
// Comparing a good and a bad run localizes where their dataflow
// diverges.
type Diff struct {
	// OnlyInA / OnlyInB: node ids present in one execution only
	// (different runs may take different process numbering, so nodes
	// are matched by id).
	OnlyInA, OnlyInB []string
	// ValueDiffs: attributes whose produced values differ between the
	// runs (matched by attribute name, first producer occurrence).
	ValueDiffs []ValueDiff
	// FirstDivergence is the earliest (topologically) differing
	// attribute, "" when none — the natural root-cause candidate.
	FirstDivergence string
}

// ValueDiff records one attribute whose value changed between runs.
type ValueDiff struct {
	Attr   string
	ValueA Value
	ValueB Value
	NodeA  string // producer in A
	NodeB  string // producer in B
}

// Equal reports whether the diff is empty.
func (d *Diff) Equal() bool {
	return len(d.OnlyInA) == 0 && len(d.OnlyInB) == 0 && len(d.ValueDiffs) == 0
}

// Render prints the diff tersely.
func (d *Diff) Render() string {
	if d.Equal() {
		return "executions identical\n"
	}
	var b strings.Builder
	if len(d.OnlyInA) > 0 {
		fmt.Fprintf(&b, "nodes only in A: %s\n", strings.Join(d.OnlyInA, ", "))
	}
	if len(d.OnlyInB) > 0 {
		fmt.Fprintf(&b, "nodes only in B: %s\n", strings.Join(d.OnlyInB, ", "))
	}
	for _, v := range d.ValueDiffs {
		fmt.Fprintf(&b, "attr %s: %q (at %s) vs %q (at %s)\n", v.Attr, v.ValueA, v.NodeA, v.ValueB, v.NodeB)
	}
	if d.FirstDivergence != "" {
		fmt.Fprintf(&b, "first divergence: %s\n", d.FirstDivergence)
	}
	return b.String()
}

// CompareExecutions diffs two executions of the same spec. It returns
// an error when the executions belong to different specs.
func CompareExecutions(a, b *Execution) (*Diff, error) {
	if a.SpecID != b.SpecID {
		return nil, fmt.Errorf("exec: diff across specs %q and %q", a.SpecID, b.SpecID)
	}
	d := &Diff{}
	nodesA := make(map[string]bool, len(a.Nodes))
	for _, n := range a.Nodes {
		nodesA[n.ID] = true
	}
	nodesB := make(map[string]bool, len(b.Nodes))
	for _, n := range b.Nodes {
		nodesB[n.ID] = true
	}
	for id := range nodesA {
		if !nodesB[id] {
			d.OnlyInA = append(d.OnlyInA, id)
		}
	}
	for id := range nodesB {
		if !nodesA[id] {
			d.OnlyInB = append(d.OnlyInB, id)
		}
	}
	sort.Strings(d.OnlyInA)
	sort.Strings(d.OnlyInB)

	// First value per attribute, in each execution.
	attrVal := func(e *Execution) map[string]*DataItem {
		m := make(map[string]*DataItem)
		for _, id := range e.ItemIDs() {
			it := e.Items[id]
			if _, seen := m[it.Attr]; !seen {
				m[it.Attr] = it
			}
		}
		return m
	}
	va, vb := attrVal(a), attrVal(b)
	var attrs []string
	for attr := range va {
		if _, ok := vb[attr]; ok {
			attrs = append(attrs, attr)
		}
	}
	sort.Strings(attrs)
	for _, attr := range attrs {
		ia, ib := va[attr], vb[attr]
		if ia.Value != ib.Value {
			d.ValueDiffs = append(d.ValueDiffs, ValueDiff{
				Attr: attr, ValueA: ia.Value, ValueB: ib.Value,
				NodeA: ia.Producer, NodeB: ib.Producer,
			})
		}
	}

	// First divergence: the differing attribute whose producer in A is
	// topologically earliest.
	if len(d.ValueDiffs) > 0 {
		g := a.Graph()
		order, err := g.TopoSort()
		if err == nil {
			rank := make(map[string]int, len(order))
			for i, n := range order {
				rank[g.Name(n)] = i
			}
			best := -1
			for _, v := range d.ValueDiffs {
				if r, ok := rank[v.NodeA]; ok && (best < 0 || r < best) {
					best = r
					d.FirstDivergence = v.Attr
				}
			}
		}
	}
	return d, nil
}
