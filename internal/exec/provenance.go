package exec

import (
	"fmt"

	"provpriv/internal/graph"
)

// Provenance returns the provenance of a data item: the sub-execution
// induced by all nodes on paths from the execution's source node(s) to
// the node that produced the item (Section 2: "the subgraph induced by
// the set of paths from the start node ... that produced d as output").
// Items on dropped edges are omitted; the queried item itself is kept.
func Provenance(e *Execution, itemID string) (*Execution, error) {
	return ProvenanceIn(e, e.Graph(), itemID)
}

// ProvenanceIn is Provenance reusing a graph already derived from e —
// the warm serving path: a cached masked snapshot carries its graph, so
// per-request provenance skips the O(nodes+edges) rebuild. g is only
// read.
func ProvenanceIn(e *Execution, g *graph.Graph, itemID string) (*Execution, error) {
	it := e.Items[itemID]
	if it == nil {
		return nil, fmt.Errorf("exec: unknown data item %q", itemID)
	}
	prod := g.Lookup(it.Producer)
	if prod == -1 {
		return nil, fmt.Errorf("exec: item %s has unknown producer %q", itemID, it.Producer)
	}
	keepIDs := g.ReachingTo(prod)
	keep := make(map[string]bool, len(keepIDs))
	for _, n := range keepIDs {
		keep[g.Name(n)] = true
	}
	return induced(e, keep, e.ID+"/prov("+itemID+")", map[string]bool{itemID: true}), nil
}

// Downstream returns the ids of all data items whose production lies
// downstream of the given item's producer — the "what downstream data
// might have been affected" provenance query from the paper's
// introduction. The queried item itself is included.
func Downstream(e *Execution, itemID string) ([]string, error) {
	return DownstreamIn(e, e.Graph(), itemID)
}

// DownstreamIn is Downstream reusing a graph already derived from e.
func DownstreamIn(e *Execution, g *graph.Graph, itemID string) ([]string, error) {
	it := e.Items[itemID]
	if it == nil {
		return nil, fmt.Errorf("exec: unknown data item %q", itemID)
	}
	prod := g.Lookup(it.Producer)
	reach := make(map[string]bool)
	for _, n := range g.ReachableFrom(prod) {
		reach[g.Name(n)] = true
	}
	var out []string
	for id, item := range e.Items {
		if reach[item.Producer] {
			out = append(out, id)
		}
	}
	sortItemIDs(out)
	return out, nil
}

// induced builds a new Execution restricted to the given node set.
// extraItems are retained even if they appear on no retained edge.
func induced(e *Execution, keep map[string]bool, id string, extraItems map[string]bool) *Execution {
	sub := &Execution{
		ID:     id,
		SpecID: e.SpecID,
		Items:  make(map[string]*DataItem),
	}
	for _, n := range e.Nodes {
		if keep[n.ID] {
			cp := *n
			sub.Nodes = append(sub.Nodes, &cp)
		}
	}
	for _, ed := range e.Edges {
		if keep[ed.From] && keep[ed.To] {
			sub.Edges = append(sub.Edges, Edge{From: ed.From, To: ed.To, Items: append([]string(nil), ed.Items...)})
			for _, itID := range ed.Items {
				if it := e.Items[itID]; it != nil {
					cp := *it
					sub.Items[itID] = &cp
				}
			}
		}
	}
	for itID := range extraItems {
		if it := e.Items[itID]; it != nil && keep[it.Producer] {
			cp := *it
			sub.Items[itID] = &cp
		}
	}
	return sub
}
