package exec

import (
	"strings"
	"testing"

	"provpriv/internal/workflow"
)

func TestCollapseRootPrefixMatchesFig2(t *testing.T) {
	spec, e := runDisease(t)
	v, err := Collapse(e, spec, workflow.NewPrefix("W1"))
	if err != nil {
		t.Fatalf("Collapse: %v", err)
	}
	// Fig. 2: nodes I, S1:M1, S8:M2, O with edges I->S1:M1 {d0,d1},
	// I->S8:M2 {d2,d3,d4}, S1:M1->S8:M2 {d10}, S8:M2->O {d19}.
	want := []string{"I", "O", "S1:M1", "S8:M2"}
	if strings.Join(v.NodeIDs(), ",") != strings.Join(want, ",") {
		t.Fatalf("nodes = %v, want %v", v.NodeIDs(), want)
	}
	if len(v.Edges) != 4 {
		t.Fatalf("edges = %d (%s), want 4", len(v.Edges), v.ASCII())
	}
	if !edgeCarries(v, "I", "S1:M1", "d0") || !edgeCarries(v, "I", "S1:M1", "d1") {
		t.Fatalf("I->S1:M1 items wrong:\n%s", v.ASCII())
	}
	if !edgeCarries(v, "I", "S8:M2", "d2") {
		t.Fatalf("I->S8:M2 items wrong:\n%s", v.ASCII())
	}
	dis := findItemByAttr(e, "disorders")
	if !edgeCarries(v, "S1:M1", "S8:M2", dis.ID) {
		t.Fatalf("S1:M1->S8:M2 missing disorders item:\n%s", v.ASCII())
	}
	prog := findItemByAttr(e, "prognosis")
	if !edgeCarries(v, "S8:M2", "O", prog.ID) {
		t.Fatalf("S8:M2->O missing prognosis:\n%s", v.ASCII())
	}
}

func TestCollapseHidesInternalItems(t *testing.T) {
	spec, e := runDisease(t)
	v, err := Collapse(e, spec, workflow.NewPrefix("W1"))
	if err != nil {
		t.Fatalf("Collapse: %v", err)
	}
	// Internal items (snp_set, queries, articles...) must be invisible.
	for _, id := range v.ItemIDs() {
		attr := v.Items[id].Attr
		switch attr {
		case "snps", "ethnicity", "lifestyle", "family_history", "symptoms",
			"disorders", "prognosis":
		default:
			t.Errorf("hidden item %s (%s) visible in view", id, attr)
		}
	}
	// Producer of disorders is remapped to the collapsed node.
	dis := findItemByAttr(e, "disorders")
	if v.Items[dis.ID].Producer != "S1:M1" {
		t.Fatalf("disorders producer = %s, want S1:M1", v.Items[dis.ID].Producer)
	}
}

func TestCollapsePartialPrefix(t *testing.T) {
	spec, e := runDisease(t)
	v, err := Collapse(e, spec, workflow.NewPrefix("W1", "W2"))
	if err != nil {
		t.Fatalf("Collapse: %v", err)
	}
	// W2 expanded: M1 begin/end and M3 visible; M4 (sub W4 not in prefix)
	// collapsed to S3:M4; M2 collapsed to S8:M2.
	ids := v.NodeIDs()
	joined := strings.Join(ids, ",")
	for _, want := range []string{"S1:M1-begin", "S1:M1-end", "S2:M3", "S3:M4", "S8:M2"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("nodes = %v, missing %s", ids, want)
		}
	}
	if strings.Contains(joined, "S4:M5") || strings.Contains(joined, "M4-begin") {
		t.Fatalf("W4 internals leaked: %v", ids)
	}
}

func TestCollapseFullPrefixIsIdentityish(t *testing.T) {
	spec, e := runDisease(t)
	h, _ := workflow.NewHierarchy(spec)
	v, err := Collapse(e, spec, workflow.FullPrefix(h))
	if err != nil {
		t.Fatalf("Collapse: %v", err)
	}
	if len(v.Nodes) != len(e.Nodes) {
		t.Fatalf("full-prefix view dropped nodes: %d vs %d", len(v.Nodes), len(e.Nodes))
	}
	if len(v.Edges) != len(e.Edges) {
		t.Fatalf("full-prefix view dropped edges: %d vs %d", len(v.Edges), len(e.Edges))
	}
	if len(v.Items) != len(e.Items) {
		t.Fatalf("full-prefix view dropped items: %d vs %d", len(v.Items), len(e.Items))
	}
}

func TestCollapseRejectsBadPrefix(t *testing.T) {
	spec, e := runDisease(t)
	if _, err := Collapse(e, spec, workflow.NewPrefix("W1", "W4")); err == nil {
		t.Fatal("bad prefix accepted")
	}
}

// Property: for every legal prefix, the collapsed view is a valid
// acyclic execution, its visible items are a subset of the full run's,
// and coarser prefixes reveal no more items than finer ones.
func TestCollapseMonotoneVisibility(t *testing.T) {
	spec, e := runDisease(t)
	h, _ := workflow.NewHierarchy(spec)
	visible := make(map[string]map[string]bool)
	for _, p := range workflow.Prefixes(h) {
		v, err := Collapse(e, spec, p)
		if err != nil {
			t.Fatalf("Collapse(%v): %v", p.IDs(), err)
		}
		if !v.Graph().IsAcyclic() {
			t.Fatalf("prefix %v: cyclic view", p.IDs())
		}
		set := make(map[string]bool)
		for _, id := range v.ItemIDs() {
			set[id] = true
			if e.Items[id] == nil {
				t.Fatalf("prefix %v: item %s not in original", p.IDs(), id)
			}
		}
		visible[strings.Join(p.IDs(), "+")] = set
	}
	// {W1} ⊆ {W1,W2} ⊆ {W1,W2,W4} etc.
	chain := []string{"W1", "W1+W2", "W1+W2+W4", "W1+W2+W3+W4"}
	for i := 0; i+1 < len(chain); i++ {
		small, big := visible[chain[i]], visible[chain[i+1]]
		for id := range small {
			if !big[id] {
				t.Fatalf("item %s visible under %s but not finer %s", id, chain[i], chain[i+1])
			}
		}
	}
}

func TestVisibleItems(t *testing.T) {
	spec, e := runDisease(t)
	items, err := VisibleItems(e, spec, workflow.NewPrefix("W1"))
	if err != nil {
		t.Fatalf("VisibleItems: %v", err)
	}
	// d0..d4 inputs + disorders + prognosis = 7.
	if len(items) != 7 {
		t.Fatalf("visible = %v, want 7 items", items)
	}
}
