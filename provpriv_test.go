package provpriv

import (
	"strings"
	"testing"
)

// TestFacadeEndToEnd walks the README quickstart through the facade:
// build the paper's workflow, attach a policy, run it, search it and
// retrieve masked provenance.
func TestFacadeEndToEnd(t *testing.T) {
	spec := DiseaseSusceptibility()
	r := NewRepository()
	pol := NewPolicy(spec.ID)
	pol.DataLevels["snps"] = Owner
	pol.ViewGrants[Analyst] = []string{"W2", "W3", "W4"}
	if err := r.AddSpec(spec, pol); err != nil {
		t.Fatalf("AddSpec: %v", err)
	}
	e, err := NewRunner(spec, nil).Run("E1", map[string]Value{
		"snps": "rs1", "ethnicity": "eth1", "lifestyle": "active",
		"family_history": "fh1", "symptoms": "none",
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := r.AddExecution(e); err != nil {
		t.Fatalf("AddExecution: %v", err)
	}
	r.AddUser(User{Name: "alice", Level: Analyst, Group: "g"})

	hits, err := r.Search("alice", "database, disorder risks", SearchOptions{})
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	if len(hits) != 1 {
		t.Fatalf("hits = %v", hits)
	}
	if strings.Join(hits[0].Result.Prefix.IDs(), ",") != "W1,W2,W4" {
		t.Fatalf("prefix = %v", hits[0].Result.Prefix.IDs())
	}

	ans, err := r.Query("alice", spec.ID, "E1",
		`MATCH a = "expand snp", b = "query omim" WHERE a ~> b RETURN provenance(b)`)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(ans.Bindings) != 1 {
		t.Fatalf("bindings = %v", ans.Bindings)
	}
}

func TestFacadeViewsAndProvenance(t *testing.T) {
	spec := DiseaseSusceptibility()
	h, err := NewHierarchy(spec)
	if err != nil {
		t.Fatalf("NewHierarchy: %v", err)
	}
	v, err := Expand(spec, FullPrefix(h))
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if len(v.Modules) != 14 {
		t.Fatalf("full expansion = %d modules", len(v.Modules))
	}
	e, err := NewRunner(spec, nil).Run("E1", map[string]Value{
		"snps": "rs1", "ethnicity": "eth1", "lifestyle": "active",
		"family_history": "fh1", "symptoms": "none",
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	view, err := CollapseExecution(e, spec, NewPrefix("W1"))
	if err != nil {
		t.Fatalf("Collapse: %v", err)
	}
	if len(view.Nodes) != 4 {
		t.Fatalf("root view nodes = %v", view.NodeIDs())
	}
	prov, err := Provenance(e, "d0")
	if err != nil || len(prov.Nodes) != 1 {
		t.Fatalf("Provenance(d0) = %v, %v", prov, err)
	}
	down, err := Downstream(e, "d0")
	if err != nil || len(down) == 0 {
		t.Fatalf("Downstream = %v, %v", down, err)
	}
}

func TestFacadeModulePrivacy(t *testing.T) {
	xor := func(in map[string]Value) map[string]Value {
		v := Value("0")
		if in["a"] != in["b"] {
			v = "1"
		}
		return map[string]Value{"y": v}
	}
	dom := Domain{"a": {"0", "1"}, "b": {"0", "1"}, "y": {"0", "1"}}
	rel, err := EnumerateRelation("m", xor, []string{"a", "b"}, []string{"y"}, dom)
	if err != nil {
		t.Fatalf("EnumerateRelation: %v", err)
	}
	sv, err := GreedySecureView(rel, 2, Weights{"y": 1, "a": 5, "b": 5})
	if err != nil {
		t.Fatalf("GreedySecureView: %v", err)
	}
	if !sv.Hidden["y"] {
		t.Fatalf("hidden = %v", sv.Hidden)
	}
	ex, err := ExhaustiveSecureView(rel, 2, Weights{"y": 1, "a": 5, "b": 5})
	if err != nil || ex.Cost != sv.Cost {
		t.Fatalf("exact = %v, %v", ex, err)
	}
}

func TestFacadeStructuralPrivacy(t *testing.T) {
	spec := DiseaseSusceptibility()
	h, _ := NewHierarchy(spec)
	v, _ := Expand(spec, FullPrefix(h))
	res, err := HideStructuralPairs(v, []StructPair{{From: "M13", To: "M11"}}, CutEdges)
	if err != nil {
		t.Fatalf("HideStructuralPairs: %v", err)
	}
	if !res.Metrics.HiddenOK {
		t.Fatal("pair not hidden")
	}
	res2, err := HideStructuralPairs(v, []StructPair{{From: "M13", To: "M11"}}, ClusterPair)
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	if res2.Metrics.ExtraneousPairs == 0 {
		t.Fatal("expected unsoundness from clustering (paper's M10->M14)")
	}
}

func TestFacadeDP(t *testing.T) {
	spec := DiseaseSusceptibility()
	e, _ := NewRunner(spec, nil).Run("E1", map[string]Value{
		"snps": "rs1", "ethnicity": "eth1", "lifestyle": "active",
		"family_history": "fh1", "symptoms": "none",
	})
	rep, err := MeasureDPReproducibility(ProvenanceSizeQuery("d0"), e, 0.5, 100, 1)
	if err != nil {
		t.Fatalf("MeasureDPReproducibility: %v", err)
	}
	if rep.MeanAbsErr == 0 {
		t.Fatal("no noise applied")
	}
}

func TestFacadeNewAPIs(t *testing.T) {
	// Relation composition + chain-aware analysis.
	xor := func(in map[string]Value) map[string]Value {
		v := Value("0")
		if in["a"] != in["b"] {
			v = "1"
		}
		return map[string]Value{"y": v}
	}
	not := func(in map[string]Value) map[string]Value {
		v := Value("1")
		if in["y"] == "1" {
			v = "0"
		}
		return map[string]Value{"w": v}
	}
	dom := Domain{"a": {"0", "1"}, "b": {"0", "1"}, "y": {"0", "1"}, "w": {"0", "1"}}
	relP, err := EnumerateRelation("P", xor, []string{"a", "b"}, []string{"y"}, dom)
	if err != nil {
		t.Fatalf("EnumerateRelation: %v", err)
	}
	relQ, err := EnumerateRelation("Q", not, []string{"y"}, []string{"w"}, dom)
	if err != nil {
		t.Fatalf("EnumerateRelation Q: %v", err)
	}
	comp, err := ComposeRelations(relP, relQ)
	if err != nil || comp.ModuleID != "P;Q" {
		t.Fatalf("ComposeRelations: %v, %v", comp, err)
	}
	lvl, err := EffectiveLevel(relP, []*Relation{relQ}, Hidden{"y": true})
	if err != nil || lvl != 1 {
		t.Fatalf("EffectiveLevel = %d, %v (want leak detected)", lvl, err)
	}
	sv, err := GreedyChainSecureView(relP, []*Relation{relQ}, 2, nil)
	if err != nil || !sv.Hidden["w"] {
		t.Fatalf("GreedyChainSecureView = %v, %v", sv, err)
	}
	// Reconstruction attack.
	stats := ReconstructionAttack(relP, []map[string]Value{{"a": "0", "b": "1"}}, Hidden{})
	if stats.Recovered != 1 {
		t.Fatalf("ReconstructionAttack = %+v", stats)
	}

	// Structural optimizer.
	spec := DiseaseSusceptibility()
	h, _ := NewHierarchy(spec)
	v, _ := Expand(spec, FullPrefix(h))
	best, err := OptimizeStructural(v, []StructPair{{From: "M13", To: "M11"}}, true)
	if err != nil {
		t.Fatalf("OptimizeStructural: %v", err)
	}
	if !best.Metrics.HiddenOK || best.Metrics.ExtraneousPairs != 0 {
		t.Fatalf("best = %+v", best.Metrics)
	}

	// Numeric generalization.
	nh, err := NumericHierarchy("age", 0, 99, 10, 2)
	if err != nil || nh.Generalize("42", 1) != "[40-49]" {
		t.Fatalf("NumericHierarchy: %v, %v", nh, err)
	}

	// Execution diff.
	run := func(id, snps string) *Execution {
		e, err := NewRunner(spec, nil).Run(id, map[string]Value{
			"snps": Value(snps), "ethnicity": "e", "lifestyle": "l",
			"family_history": "f", "symptoms": "s",
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return e
	}
	d, err := CompareExecutions(run("A", "rs1"), run("B", "rs2"))
	if err != nil || d.Equal() || d.FirstDivergence != "snps" {
		t.Fatalf("CompareExecutions: %+v, %v", d, err)
	}
}

func TestFacadeSaveLoad(t *testing.T) {
	dir := t.TempDir()
	spec := DiseaseSusceptibility()
	r := NewRepository()
	if err := r.AddSpec(spec, nil); err != nil {
		t.Fatalf("AddSpec: %v", err)
	}
	r.AddUser(User{Name: "u", Level: Owner, Group: "g"})
	if err := r.Save(dir); err != nil {
		t.Fatalf("Save: %v", err)
	}
	r2, err := LoadRepository(dir)
	if err != nil {
		t.Fatalf("LoadRepository: %v", err)
	}
	if r2.Stats().Specs != 1 {
		t.Fatalf("stats = %+v", r2.Stats())
	}
	if _, err := r2.User("u"); err != nil {
		t.Fatalf("user lost: %v", err)
	}
}
