module provpriv

go 1.24
