package provpriv

// End-to-end integration test: a repository mixing the paper's workflow
// with synthetic specs and random policies, exercised by users at every
// access level. Asserts the system-wide privacy invariants — no answer
// from any entry point may exceed the requesting user's rights.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"provpriv/internal/exec"
	"provpriv/internal/privacy"
	"provpriv/internal/repo"
	"provpriv/internal/workflow"
	"provpriv/internal/workload"
)

func buildIntegrationRepo(t *testing.T) *repo.Repository {
	t.Helper()
	r := repo.New()

	// The paper's workflow with its Section 3 policy.
	disease := workflow.DiseaseSusceptibility()
	pol := privacy.NewPolicy(disease.ID)
	pol.DataLevels["snps"] = privacy.Owner
	pol.DataLevels["disorders"] = privacy.Analyst
	pol.ModuleLevels["M6"] = privacy.Owner
	pol.ViewGrants[privacy.Registered] = []string{"W2"}
	pol.ViewGrants[privacy.Analyst] = []string{"W3", "W4"}
	if err := r.AddSpec(disease, pol); err != nil {
		t.Fatalf("AddSpec disease: %v", err)
	}
	runner := exec.NewRunner(disease, nil)
	for i := 0; i < 3; i++ {
		e, err := runner.Run(fmt.Sprintf("disease-E%d", i), map[string]exec.Value{
			"snps": exec.Value(fmt.Sprintf("rs%d", i)), "ethnicity": "eth1",
			"lifestyle": "active", "family_history": "fh", "symptoms": "none",
		})
		if err != nil {
			t.Fatalf("run disease %d: %v", i, err)
		}
		if err := r.AddExecution(e); err != nil {
			t.Fatalf("add exec: %v", err)
		}
	}

	// Synthetic specs with random policies.
	for i := 0; i < 4; i++ {
		s, err := workload.RandomSpec(workload.SpecConfig{
			Seed: int64(100 + i), ID: fmt.Sprintf("synth-%d", i),
			Depth: 3, Fanout: 2, Chain: 4, SkipProb: 0.25,
		})
		if err != nil {
			t.Fatalf("synth %d: %v", i, err)
		}
		sp, err := workload.RandomPolicy(s, int64(100+i))
		if err != nil {
			t.Fatalf("policy %d: %v", i, err)
		}
		if err := r.AddSpec(s, sp); err != nil {
			t.Fatalf("AddSpec synth %d: %v", i, err)
		}
		rr := exec.NewRunner(s, nil)
		for j := 0; j < 2; j++ {
			e, err := rr.Run(fmt.Sprintf("synth-%d-E%d", i, j), workload.RandomInputs(s, int64(j)))
			if err != nil {
				t.Fatalf("run synth %d/%d: %v", i, j, err)
			}
			if err := r.AddExecution(e); err != nil {
				t.Fatalf("add exec: %v", err)
			}
		}
	}

	for _, u := range []privacy.User{
		{Name: "pub", Level: privacy.Public, Group: "g0"},
		{Name: "reg", Level: privacy.Registered, Group: "g1"},
		{Name: "ana", Level: privacy.Analyst, Group: "g2"},
		{Name: "own", Level: privacy.Owner, Group: "g3"},
	} {
		r.AddUser(u)
	}
	return r
}

func TestIntegrationPrivacyInvariants(t *testing.T) {
	r := buildIntegrationRepo(t)
	rng := rand.New(rand.NewSource(55))
	users := []struct {
		name  string
		level privacy.Level
	}{
		{"pub", privacy.Public}, {"reg", privacy.Registered},
		{"ana", privacy.Analyst}, {"own", privacy.Owner},
	}
	queries := append(workload.RandomQueries(rng, nil, 10),
		"database, disorder risks", "query", "snp")

	for _, u := range users {
		for _, q := range queries {
			hits, err := r.Search(u.name, q, repo.SearchOptions{})
			if err != nil {
				continue
			}
			for _, h := range hits {
				pol := r.Policy(h.SpecID)
				spec := r.Spec(h.SpecID)
				h2, _ := workflow.NewHierarchy(spec)
				access := pol.AccessView(h2, u.level)
				// Invariant 1: result view within access view.
				for wid := range h.Result.Prefix {
					if !access.Contains(wid) {
						t.Fatalf("user %s query %q: view %v exceeds access %v in %s",
							u.name, q, h.Result.Prefix.IDs(), access.IDs(), h.SpecID)
					}
				}
				// Invariant 2: no match names a module-private module the
				// user may not see.
				for _, m := range h.Result.Matches {
					if !pol.CanSeeModule(u.level, m.ModuleID) {
						t.Fatalf("user %s query %q: match on hidden module %s",
							u.name, q, m.ModuleID)
					}
				}
			}
		}
	}
}

func TestIntegrationProvenanceMasking(t *testing.T) {
	r := buildIntegrationRepo(t)
	for _, specID := range r.SpecIDs() {
		pol := r.Policy(specID)
		for _, execID := range r.ExecutionIDs(specID) {
			for _, u := range []struct {
				name  string
				level privacy.Level
			}{{"pub", privacy.Public}, {"reg", privacy.Registered}, {"own", privacy.Owner}} {
				// Probe every item; visible ones must be masked per policy.
				// (Item ids d0..d30 cover all generated executions.)
				for i := 0; i < 30; i++ {
					itemID := fmt.Sprintf("d%d", i)
					prov, err := r.Provenance(u.name, specID, execID, itemID)
					if err != nil {
						continue // item hidden or absent: fine
					}
					for _, it := range prov.Items {
						if !pol.CanSeeData(u.level, it.Attr) && !it.Redacted {
							t.Fatalf("user %s: unredacted protected attr %q in provenance of %s/%s",
								u.name, it.Attr, specID, itemID)
						}
					}
				}
			}
		}
	}
}

func TestIntegrationStructuralQueryLevels(t *testing.T) {
	r := buildIntegrationRepo(t)
	q := `MATCH a = "query omim"`
	// Owners find M6 in spec and execution; public users never do.
	ansOwn, err := r.QuerySpec("own", "disease-susceptibility", q)
	if err != nil {
		t.Fatalf("QuerySpec own: %v", err)
	}
	if len(ansOwn.Bindings) != 1 {
		t.Fatalf("owner spec bindings = %v", ansOwn.Bindings)
	}
	ansPub, err := r.QuerySpec("pub", "disease-susceptibility", q)
	if err != nil {
		t.Fatalf("QuerySpec pub: %v", err)
	}
	if len(ansPub.Bindings) != 0 {
		t.Fatalf("public spec bindings = %v", ansPub.Bindings)
	}
	for _, eid := range r.ExecutionIDs("disease-susceptibility") {
		a, err := r.Query("own", "disease-susceptibility", eid, q)
		if err != nil {
			t.Fatalf("Query own: %v", err)
		}
		if len(a.Bindings) != 1 {
			t.Fatalf("owner exec bindings = %v", a.Bindings)
		}
		b, err := r.Query("pub", "disease-susceptibility", eid, q)
		if err != nil {
			t.Fatalf("Query pub: %v", err)
		}
		if len(b.Bindings) != 0 {
			t.Fatalf("public exec bindings = %v", b.Bindings)
		}
	}
}

func TestIntegrationMaterializationConsistency(t *testing.T) {
	plain := buildIntegrationRepo(t)
	mat := buildIntegrationRepo(t)
	if err := mat.EnableMaterialization([]privacy.Level{
		privacy.Public, privacy.Registered, privacy.Analyst, privacy.Owner,
	}); err != nil {
		t.Fatalf("EnableMaterialization: %v", err)
	}
	for _, specID := range plain.SpecIDs() {
		for _, execID := range plain.ExecutionIDs(specID) {
			for i := 0; i < 25; i += 5 {
				itemID := fmt.Sprintf("d%d", i)
				for _, user := range []string{"pub", "ana", "own"} {
					a, errA := plain.Provenance(user, specID, execID, itemID)
					b, errB := mat.Provenance(user, specID, execID, itemID)
					if (errA == nil) != (errB == nil) {
						t.Fatalf("%s/%s/%s %s: err mismatch %v vs %v", specID, execID, itemID, user, errA, errB)
					}
					if errA != nil {
						continue
					}
					if strings.Join(a.NodeIDs(), ",") != strings.Join(b.NodeIDs(), ",") {
						t.Fatalf("%s/%s/%s %s: node mismatch", specID, execID, itemID, user)
					}
				}
			}
		}
	}
}
